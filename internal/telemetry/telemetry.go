// Package telemetry is a small virtual-time metrics library used by the
// platform's reporting: counters, gauges, and quantile histograms keyed by
// name, with deterministic text rendering and a JSON-marshalable snapshot.
// It exists so experiments and long-running scenarios can summarize
// behavior without each component hand-rolling aggregation.
//
// Metric names follow a `component.metric` scheme (for example
// `ddi.cache.hits`, `offload.uplink_ms`); histogram names carry their unit
// as a suffix.
//
// Hot emitters should resolve interned handles once at construction time —
// Registry.CounterHandle / Registry.HistogramHandle — and bump those:
// a Counter.Add is a single lock-free CAS and a HistogramHandle.Observe
// takes only that histogram's lock, so per-event emission never contends
// on the registry mutex or re-hashes the metric name.
package telemetry

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Counter is an interned counter handle: a single lock-free float64 cell.
// All methods are nil-safe, so components resolved against a nil registry
// can bump handles unconditionally.
//
// A counter resolved ahead of time but never added to stays invisible to
// Snapshot/Render/Merge (the touched flag), so pre-resolving handles at
// construction cannot change reported output versus creating metrics
// lazily at the first emission.
type Counter struct {
	bits    atomic.Uint64 // float64 bits
	touched atomic.Bool   // set by the first Add
}

// Add increments the counter by delta.
func (c *Counter) Add(delta float64) {
	if c == nil {
		return
	}
	if !c.touched.Load() {
		c.touched.Store(true)
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Touched reports whether the counter was ever added to. Samplers use it to
// skip never-bumped pre-resolved handles, mirroring Snapshot/Render/Merge
// visibility.
func (c *Counter) Touched() bool {
	if c == nil {
		return false
	}
	return c.touched.Load()
}

// Value returns the current count (0 for a nil handle).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// HistogramHandle is an interned histogram handle. Observe takes only this
// histogram's lock — never the registry's — and is nil-safe.
type HistogramHandle struct {
	mu sync.Mutex
	h  *Histogram
}

// Observe records a sample.
func (hh *HistogramHandle) Observe(v float64) {
	if hh == nil {
		return
	}
	hh.mu.Lock()
	hh.h.Observe(v)
	hh.mu.Unlock()
}

// ObserveDuration records a duration sample in milliseconds.
func (hh *HistogramHandle) ObserveDuration(d time.Duration) {
	hh.Observe(float64(d) / float64(time.Millisecond))
}

// CountSum returns the histogram's exact sample count and total without
// copying retained samples — the allocation-free read samplers poll every
// tick. A nil handle reads as empty.
func (hh *HistogramHandle) CountSum() (int, float64) {
	if hh == nil {
		return 0, 0
	}
	hh.mu.Lock()
	c, s := hh.h.count, hh.h.sum
	hh.mu.Unlock()
	return c, s
}

// Registry holds named metrics. It is safe for concurrent use (the REST
// tier reaches it from server goroutines). The registry mutex guards the
// name → handle maps; the metric cells themselves are a lock-free Counter
// or a per-histogram lock, so handle-based emission scales independently
// of registry traffic.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]float64
	histograms map[string]*HistogramHandle

	// reservoirK, when positive, bounds every histogram created afterwards
	// to a deterministic reservoir of k samples (fleet-scale mode).
	reservoirK    int
	reservoirSeed int64

	// gen increments whenever a counter or histogram is interned, letting
	// samplers detect (cheaply, without the registry lock) that their cached
	// handle lists went stale.
	gen atomic.Uint64
}

// Generation returns a monotonically increasing value bumped every time a
// new counter or histogram is interned. Zero for a nil registry.
func (r *Registry) Generation() uint64 {
	if r == nil {
		return 0
	}
	return r.gen.Load()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]float64),
		histograms: make(map[string]*HistogramHandle),
	}
}

// CounterHandle interns name and returns its counter handle. Resolve once
// at component construction; the handle stays valid for the registry's
// lifetime. A nil registry yields a nil (safely inert) handle.
func (r *Registry) CounterHandle(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	c := r.counterLocked(name)
	r.mu.Unlock()
	return c
}

func (r *Registry) counterLocked(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.gen.Add(1)
	}
	return c
}

// HistogramHandle interns name and returns its histogram handle. Resolve
// once at component construction. A nil registry yields a nil (safely
// inert) handle.
func (r *Registry) HistogramHandle(name string) *HistogramHandle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hh := r.histogramLocked(name)
	r.mu.Unlock()
	return hh
}

func (r *Registry) histogramLocked(name string) *HistogramHandle {
	hh, ok := r.histograms[name]
	if !ok {
		var h *Histogram
		if r.reservoirK > 0 {
			h = NewReservoirHistogram(r.reservoirK, sim.NewRNG(r.reservoirSeed^int64(hashName(name))))
		} else {
			h = &Histogram{}
		}
		hh = &HistogramHandle{h: h}
		r.histograms[name] = hh
		r.gen.Add(1)
	}
	return hh
}

// EnableReservoir switches histogram creation to bounded deterministic
// reservoirs of k samples. Each histogram derives its own RNG from seed and
// its name, so quantile summaries are reproducible regardless of metric
// creation order. Histograms that already exist keep their mode. k <= 0
// disables the mode for subsequently created histograms.
func (r *Registry) EnableReservoir(k int, seed int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reservoirK = k
	r.reservoirSeed = seed
}

// Add increments a counter by name (the convenience path; hot emitters
// should hold a CounterHandle instead).
func (r *Registry) Add(name string, delta float64) {
	r.CounterHandle(name).Add(delta)
}

// Counter returns a counter's value.
func (r *Registry) Counter(name string) float64 {
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// Set records a gauge's current value.
func (r *Registry) Set(name string, value float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = value
}

// Gauge returns a gauge's value and whether it was ever set.
func (r *Registry) Gauge(name string) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gauges[name]
	return v, ok
}

// Observe records a sample into a histogram by name (hot emitters should
// hold a HistogramHandle instead).
func (r *Registry) Observe(name string, value float64) {
	r.HistogramHandle(name).Observe(value)
}

// Merge folds src's metrics into r: counters add, gauges take src's value
// (so merging shards in replication-index order deterministically keeps the
// highest index's reading), and histograms combine — Count, Sum, Min, and
// Max stay exact, while the retained samples become the union of both
// sides' retained samples. Merging reservoir histograms may therefore
// retain more than one reservoir's worth of samples; merged registries are
// meant to be read, not observed into. src is only read, never mutated, and
// may keep collecting afterwards. Merging a registry into itself is a
// no-op.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil || r == src {
		return
	}
	// Deep-copy src under its own locks first so the two registries'
	// mutexes are never held together (no ordering constraint between
	// registries). Handle locks nest under their registry's mutex.
	src.mu.Lock()
	counters := make(map[string]float64, len(src.counters))
	for n, c := range src.counters {
		if !c.touched.Load() {
			continue
		}
		counters[n] = c.Value()
	}
	gauges := make(map[string]float64, len(src.gauges))
	for n, v := range src.gauges {
		gauges[n] = v
	}
	hists := make(map[string]*Histogram, len(src.histograms))
	for n, hh := range src.histograms {
		hh.mu.Lock()
		if hh.h.count > 0 {
			hists[n] = hh.h.clone()
		}
		hh.mu.Unlock()
	}
	src.mu.Unlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	for n, v := range counters {
		r.counterLocked(n).Add(v)
	}
	for n, v := range gauges {
		r.gauges[n] = v
	}
	for n, h := range hists {
		if cur, ok := r.histograms[n]; ok {
			cur.mu.Lock()
			cur.h.merge(h)
			cur.mu.Unlock()
		} else {
			r.histograms[n] = &HistogramHandle{h: h}
			r.gen.Add(1)
		}
	}
}

// EachMetric calls counterFn for every interned counter and histFn for every
// interned histogram, each in name-sorted order, under the registry lock.
// Untouched counters and never-observed histograms are included — callers
// that mirror report visibility filter with Counter.Touched / CountSum.
// Callbacks must not call back into the registry. Either callback may be
// nil to skip that metric class.
func (r *Registry) EachMetric(counterFn func(name string, c *Counter), histFn func(name string, h *HistogramHandle)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if counterFn != nil {
		names := make([]string, 0, len(r.counters))
		for n := range r.counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			counterFn(n, r.counters[n])
		}
	}
	if histFn != nil {
		names := make([]string, 0, len(r.histograms))
		for n := range r.histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			histFn(n, r.histograms[n])
		}
	}
}

// hashName derives a stable per-metric seed component.
func hashName(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32()
}

// ObserveDuration records a duration sample in milliseconds.
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	r.Observe(name, float64(d)/float64(time.Millisecond))
}

// Histogram returns an isolated copy of the named histogram (nil if absent
// or never observed into). The copy keeps collecting independently if
// observed into.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	hh, ok := r.histograms[name]
	r.mu.Unlock()
	if !ok {
		return nil
	}
	hh.mu.Lock()
	defer hh.mu.Unlock()
	if hh.h.count == 0 {
		return nil
	}
	return hh.h.clone()
}

// Histogram stores samples — raw, or a bounded deterministic reservoir
// (Vitter's Algorithm R) when built by NewReservoirHistogram — and answers
// quantile queries. Count, Sum, Min, and Max are always exact; quantiles of
// a reservoir histogram are estimates over its k retained samples.
//
// The zero value is a valid unbounded histogram. Read methods never mutate
// state, so concurrent readers of a shared *Histogram are safe as long as
// no Observe runs concurrently (the Registry serializes its own).
type Histogram struct {
	samples []float64
	count   int
	sum     float64
	min     float64
	max     float64
	limit   int      // 0 = keep every sample
	rng     *sim.RNG // reservoir replacement source when limit > 0
}

// NewReservoirHistogram returns a histogram retaining at most k samples,
// replacing uniformly at random from the given deterministic source.
func NewReservoirHistogram(k int, rng *sim.RNG) *Histogram {
	if k <= 0 || rng == nil {
		return &Histogram{}
	}
	return &Histogram{limit: k, rng: rng}
}

// clone returns an independent deep copy.
func (h *Histogram) clone() *Histogram {
	cp := *h
	cp.samples = append([]float64(nil), h.samples...)
	if h.rng != nil {
		cp.rng = h.rng.Clone()
	}
	return &cp
}

// merge folds src's samples into h, keeping Count/Sum/Min/Max exact and
// appending src's retained samples in order (see Registry.Merge for the
// reservoir caveat). src must not be observed into concurrently.
func (h *Histogram) merge(src *Histogram) {
	if src == nil || src.count == 0 {
		return
	}
	if h.count == 0 || src.min < h.min {
		h.min = src.min
	}
	if h.count == 0 || src.max > h.max {
		h.max = src.max
	}
	h.count += src.count
	h.sum += src.sum
	h.samples = append(h.samples, src.samples...)
}

// Observe adds a sample.
func (h *Histogram) Observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.limit <= 0 || len(h.samples) < h.limit {
		h.samples = append(h.samples, v)
		return
	}
	// Algorithm R: the n-th sample replaces a random slot with
	// probability k/n, keeping the reservoir uniform over all samples.
	if j := h.rng.Intn(h.count); j < h.limit {
		h.samples[j] = v
	}
}

// Count returns the number of observed samples (not just retained ones).
func (h *Histogram) Count() int { return h.count }

// Sum returns the exact sample total.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the average (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Retained returns how many samples back quantile queries (equal to Count
// for unbounded histograms, at most the reservoir size otherwise).
func (h *Histogram) Retained() int { return len(h.samples) }

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank; NaN with
// no samples. It sorts a private copy, leaving sample order untouched, so
// holders of histogram copies never see their samples reordered.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), h.samples...)
	sort.Float64s(sorted)
	return quantileOf(sorted, q)
}

// quantileOf answers a nearest-rank query over pre-sorted samples.
func quantileOf(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Min returns the smallest sample ever observed (NaN with none).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.min
}

// Max returns the largest sample ever observed (NaN with none).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.max
}

// HistogramSummary is a JSON-marshalable digest of one histogram. Min and
// Max are exact; quantiles come from the retained samples.
type HistogramSummary struct {
	Count    int     `json:"count"`
	Retained int     `json:"retained"`
	Sum      float64 `json:"sum"`
	Mean     float64 `json:"mean"`
	Min      float64 `json:"min"`
	P50      float64 `json:"p50"`
	P90      float64 `json:"p90"`
	P95      float64 `json:"p95"`
	P99      float64 `json:"p99"`
	Max      float64 `json:"max"`
}

// Summary digests the histogram, sorting the retained samples once. An
// empty histogram summarizes to all zeros (not NaN), keeping the result
// JSON-marshalable.
func (h *Histogram) Summary() HistogramSummary {
	if h.count == 0 {
		return HistogramSummary{}
	}
	sorted := append([]float64(nil), h.samples...)
	sort.Float64s(sorted)
	return HistogramSummary{
		Count:    h.count,
		Retained: len(h.samples),
		Sum:      h.sum,
		Mean:     h.Mean(),
		Min:      h.min,
		P50:      quantileOf(sorted, 0.50),
		P90:      quantileOf(sorted, 0.90),
		P95:      quantileOf(sorted, 0.95),
		P99:      quantileOf(sorted, 0.99),
		Max:      h.max,
	}
}

// Snapshot is the full registry state, ready for json.Marshal (the
// `/v1/metrics` payload).
type Snapshot struct {
	Counters   map[string]float64          `json:"counters"`
	Gauges     map[string]float64          `json:"gauges"`
	Histograms map[string]HistogramSummary `json:"histograms"`
}

// Snapshot copies every metric into a self-contained, JSON-marshalable
// struct. Maps are freshly allocated; mutating the snapshot cannot touch
// the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		Counters:   make(map[string]float64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSummary, len(r.histograms)),
	}
	for n, c := range r.counters {
		if !c.touched.Load() {
			continue
		}
		snap.Counters[n] = c.Value()
	}
	for n, v := range r.gauges {
		snap.Gauges[n] = v
	}
	for n, hh := range r.histograms {
		hh.mu.Lock()
		if hh.h.count > 0 {
			snap.Histograms[n] = hh.h.Summary()
		}
		hh.mu.Unlock()
	}
	return snap
}

// Render produces a deterministic multi-line summary of every metric,
// sorted by name.
func (r *Registry) Render() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	names := make([]string, 0, len(r.counters))
	for n, c := range r.counters {
		if c.touched.Load() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %-40s %.2f\n", n, r.counters[n].Value())
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge   %-40s %.2f\n", n, r.gauges[n])
	}
	names = names[:0]
	for n, hh := range r.histograms {
		hh.mu.Lock()
		if hh.h.count > 0 {
			names = append(names, n)
		}
		hh.mu.Unlock()
	}
	sort.Strings(names)
	for _, n := range names {
		hh := r.histograms[n]
		hh.mu.Lock()
		s := hh.h.Summary()
		hh.mu.Unlock()
		fmt.Fprintf(&b, "hist    %-40s n=%d mean=%.2f p50=%.2f p95=%.2f max=%.2f\n",
			n, s.Count, s.Mean, s.P50, s.P95, s.Max)
	}
	return b.String()
}

// Package telemetry is a small virtual-time metrics library used by the
// platform's reporting: counters, gauges, and quantile histograms keyed by
// name, with deterministic text rendering. It exists so experiments and
// long-running scenarios can summarize behavior without each component
// hand-rolling aggregation.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry holds named metrics. It is safe for concurrent use (the REST
// tier reaches it from server goroutines).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]float64
	gauges     map[string]float64
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]float64),
		gauges:     make(map[string]float64),
		histograms: make(map[string]*Histogram),
	}
}

// Add increments a counter.
func (r *Registry) Add(name string, delta float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] += delta
}

// Counter returns a counter's value.
func (r *Registry) Counter(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Set records a gauge's current value.
func (r *Registry) Set(name string, value float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = value
}

// Gauge returns a gauge's value and whether it was ever set.
func (r *Registry) Gauge(name string) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gauges[name]
	return v, ok
}

// Observe records a sample into a histogram.
func (r *Registry) Observe(name string, value float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	h.Observe(value)
}

// ObserveDuration records a duration sample in milliseconds.
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	r.Observe(name, float64(d)/float64(time.Millisecond))
}

// Histogram returns the named histogram snapshot (nil if absent).
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		return nil
	}
	cp := &Histogram{samples: append([]float64(nil), h.samples...), sorted: false}
	return cp
}

// Histogram stores raw samples (scenario scale keeps this cheap) and
// answers quantile queries.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Observe adds a sample.
func (h *Histogram) Observe(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the sample total.
func (h *Histogram) Sum() float64 {
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s
}

// Mean returns the average (0 with no samples).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.Sum() / float64(len(h.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank; NaN with
// no samples.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return math.NaN()
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Max returns the largest sample (NaN with none).
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Render produces a deterministic multi-line summary of every metric,
// sorted by name.
func (r *Registry) Render() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %-40s %.2f\n", n, r.counters[n])
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge   %-40s %.2f\n", n, r.gauges[n])
	}
	names = names[:0]
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.histograms[n]
		fmt.Fprintf(&b, "hist    %-40s n=%d mean=%.2f p50=%.2f p95=%.2f max=%.2f\n",
			n, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max())
	}
	return b.String()
}

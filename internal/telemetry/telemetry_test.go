package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounters(t *testing.T) {
	r := NewRegistry()
	r.Add("invocations", 1)
	r.Add("invocations", 2)
	if got := r.Counter("invocations"); got != 3 {
		t.Fatalf("counter = %v", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %v", got)
	}
}

func TestGauges(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Gauge("speed"); ok {
		t.Fatal("unset gauge reported set")
	}
	r.Set("speed", 35)
	r.Set("speed", 70)
	v, ok := r.Gauge("speed")
	if !ok || v != 70 {
		t.Fatalf("gauge = %v, %v", v, ok)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 || h.Sum() != 5050 || h.Mean() != 50.5 {
		t.Fatalf("stats = %d/%v/%v", h.Count(), h.Sum(), h.Mean())
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Quantile(0.95); got != 95 {
		t.Fatalf("p95 = %v", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("max = %v", got)
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	if err := quick.Check(func(vals []float64) bool {
		h := &Histogram{}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		if h.Count() == 0 {
			return true
		}
		prev := h.Quantile(0)
		for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	r.ObserveDuration("latency", 250*time.Millisecond)
	h := r.Histogram("latency")
	if h == nil || h.Count() != 1 {
		t.Fatal("duration not recorded")
	}
	if h.Mean() != 250 {
		t.Fatalf("mean = %v ms", h.Mean())
	}
	if r.Histogram("missing") != nil {
		t.Fatal("missing histogram not nil")
	}
}

func TestHistogramSnapshotIsolated(t *testing.T) {
	r := NewRegistry()
	r.Observe("x", 1)
	snap := r.Histogram("x")
	snap.Observe(999)
	if got := r.Histogram("x").Count(); got != 1 {
		t.Fatalf("snapshot mutation leaked: count = %d", got)
	}
}

func TestRenderDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Add("b-counter", 2)
	r.Add("a-counter", 1)
	r.Set("z-gauge", 9)
	r.Observe("m-hist", 5)
	r.Observe("m-hist", 15)
	out1 := r.Render()
	out2 := r.Render()
	if out1 != out2 {
		t.Fatal("render not deterministic")
	}
	for _, want := range []string{"a-counter", "b-counter", "z-gauge", "m-hist", "p95"} {
		if !strings.Contains(out1, want) {
			t.Fatalf("render missing %q:\n%s", want, out1)
		}
	}
	if strings.Index(out1, "a-counter") > strings.Index(out1, "b-counter") {
		t.Fatal("counters not sorted")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add("c", 1)
				r.Set("g", float64(i))
				r.Observe("h", float64(i))
			}
		}()
	}
	wg.Wait()
	if r.Counter("c") != 4000 {
		t.Fatalf("counter = %v", r.Counter("c"))
	}
	if r.Histogram("h").Count() != 4000 {
		t.Fatal("histogram lost samples")
	}
}

package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounters(t *testing.T) {
	r := NewRegistry()
	r.Add("invocations", 1)
	r.Add("invocations", 2)
	if got := r.Counter("invocations"); got != 3 {
		t.Fatalf("counter = %v", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %v", got)
	}
}

func TestGauges(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Gauge("speed"); ok {
		t.Fatal("unset gauge reported set")
	}
	r.Set("speed", 35)
	r.Set("speed", 70)
	v, ok := r.Gauge("speed")
	if !ok || v != 70 {
		t.Fatalf("gauge = %v, %v", v, ok)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 || h.Sum() != 5050 || h.Mean() != 50.5 {
		t.Fatalf("stats = %d/%v/%v", h.Count(), h.Sum(), h.Mean())
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Quantile(0.95); got != 95 {
		t.Fatalf("p95 = %v", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("max = %v", got)
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	if err := quick.Check(func(vals []float64) bool {
		h := &Histogram{}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		if h.Count() == 0 {
			return true
		}
		prev := h.Quantile(0)
		for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	r.ObserveDuration("latency", 250*time.Millisecond)
	h := r.Histogram("latency")
	if h == nil || h.Count() != 1 {
		t.Fatal("duration not recorded")
	}
	if h.Mean() != 250 {
		t.Fatalf("mean = %v ms", h.Mean())
	}
	if r.Histogram("missing") != nil {
		t.Fatal("missing histogram not nil")
	}
}

func TestHistogramSnapshotIsolated(t *testing.T) {
	r := NewRegistry()
	r.Observe("x", 1)
	snap := r.Histogram("x")
	snap.Observe(999)
	if got := r.Histogram("x").Count(); got != 1 {
		t.Fatalf("snapshot mutation leaked: count = %d", got)
	}
}

func TestRenderDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Add("b-counter", 2)
	r.Add("a-counter", 1)
	r.Set("z-gauge", 9)
	r.Observe("m-hist", 5)
	r.Observe("m-hist", 15)
	out1 := r.Render()
	out2 := r.Render()
	if out1 != out2 {
		t.Fatal("render not deterministic")
	}
	for _, want := range []string{"a-counter", "b-counter", "z-gauge", "m-hist", "p95"} {
		if !strings.Contains(out1, want) {
			t.Fatalf("render missing %q:\n%s", want, out1)
		}
	}
	if strings.Index(out1, "a-counter") > strings.Index(out1, "b-counter") {
		t.Fatal("counters not sorted")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add("c", 1)
				r.Set("g", float64(i))
				r.Observe("h", float64(i))
			}
		}()
	}
	wg.Wait()
	if r.Counter("c") != 4000 {
		t.Fatalf("counter = %v", r.Counter("c"))
	}
	if r.Histogram("h").Count() != 4000 {
		t.Fatal("histogram lost samples")
	}
}

func TestQuantileDoesNotMutateSampleOrder(t *testing.T) {
	// Regression: Quantile used to sort.Float64s the live sample slice,
	// reordering samples under every holder of the histogram.
	h := &Histogram{}
	for _, v := range []float64{5, 1, 4, 2, 3} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := h.samples; got[0] != 5 || got[4] != 3 {
		t.Fatalf("Quantile reordered samples: %v", got)
	}
}

func TestObserveRenderRace(t *testing.T) {
	// Regression companion for the Quantile fix: hammer Observe and the
	// quantile-reading paths concurrently under -race.
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				r.Observe("h", float64(g*1000+i))
				r.Add("c", 1)
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = r.Render()
				_ = r.Snapshot()
				if h := r.Histogram("h"); h != nil {
					_ = h.Quantile(0.95)
					_ = h.Summary()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Histogram("h").Count(); got != 1200 {
		t.Fatalf("histogram count = %d, want 1200", got)
	}
}

func TestReservoirBoundsMemoryKeepsExactAggregates(t *testing.T) {
	r := NewRegistry()
	r.EnableReservoir(64, 42)
	const n = 10000
	for i := 1; i <= n; i++ {
		r.Observe("lat_ms", float64(i))
	}
	h := r.Histogram("lat_ms")
	if h.Retained() != 64 {
		t.Fatalf("retained = %d, want 64", h.Retained())
	}
	if h.Count() != n || h.Sum() != float64(n*(n+1)/2) {
		t.Fatalf("exact aggregates lost: count=%d sum=%v", h.Count(), h.Sum())
	}
	if h.Min() != 1 || h.Max() != n {
		t.Fatalf("min/max = %v/%v, want 1/%d", h.Min(), h.Max(), n)
	}
	// The reservoir is uniform: the median estimate should land well
	// inside the bulk of the distribution.
	p50 := h.Quantile(0.5)
	if p50 < float64(n)*0.2 || p50 > float64(n)*0.8 {
		t.Fatalf("reservoir p50 = %v implausible for uniform 1..%d", p50, n)
	}
}

func TestReservoirDeterministicAcrossRuns(t *testing.T) {
	run := func() Snapshot {
		r := NewRegistry()
		r.EnableReservoir(32, 7)
		// Creation order differs between runs; per-name seeding must make
		// that irrelevant.
		r.Observe("b", 0)
		for i := 0; i < 5000; i++ {
			r.Observe("a", float64(i%997))
			r.Observe("b", float64(i%131))
		}
		return r.Snapshot()
	}
	s1, s2 := run(), run()
	j1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("reservoir snapshots differ across identical runs:\n%s\n%s", j1, j2)
	}
}

func TestSnapshotGolden(t *testing.T) {
	r := NewRegistry()
	r.Add("ddi.cache.hits", 3)
	r.Set("vcu.devices_online", 4)
	for _, v := range []float64{10, 20, 30, 40} {
		r.Observe("offload.total_ms", v)
	}
	got, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"counters":{"ddi.cache.hits":3},` +
		`"gauges":{"vcu.devices_online":4},` +
		`"histograms":{"offload.total_ms":{"count":4,"retained":4,"sum":100,"mean":25,"min":10,"p50":20,"p90":40,"p95":40,"p99":40,"max":40}}}`
	if string(got) != golden {
		t.Fatalf("snapshot JSON drifted:\n got: %s\nwant: %s", got, golden)
	}
}

func TestSnapshotEmptyAndIsolated(t *testing.T) {
	r := NewRegistry()
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("empty registry snapshot not empty: %+v", snap)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("empty snapshot not marshalable: %v", err)
	}
	r.Add("c", 1)
	snap = r.Snapshot()
	snap.Counters["c"] = 99
	if got := r.Counter("c"); got != 1 {
		t.Fatalf("snapshot mutation leaked into registry: %v", got)
	}
}

// TestRegistryMerge: counters add, gauges take the source's value, and
// histogram Count/Sum/Min/Max stay exact across a merge.
func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Add("hits", 2)
	b.Add("hits", 3)
	b.Add("only.b", 1)
	a.Set("depth", 4)
	b.Set("depth", 9)
	for _, v := range []float64{1, 2, 3} {
		a.Observe("lat_ms", v)
	}
	for _, v := range []float64{10, 0.5} {
		b.Observe("lat_ms", v)
	}
	b.Observe("only.b_ms", 7)

	a.Merge(b)
	if got := a.Counter("hits"); got != 5 {
		t.Fatalf("merged counter = %v, want 5", got)
	}
	if got := a.Counter("only.b"); got != 1 {
		t.Fatalf("source-only counter = %v, want 1", got)
	}
	if got, _ := a.Gauge("depth"); got != 9 {
		t.Fatalf("merged gauge = %v, want source value 9", got)
	}
	h := a.Histogram("lat_ms")
	if h.Count() != 5 || h.Sum() != 16.5 || h.Min() != 0.5 || h.Max() != 10 {
		t.Fatalf("merged histogram = count %d sum %v min %v max %v",
			h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if a.Histogram("only.b_ms") == nil {
		t.Fatal("source-only histogram missing after merge")
	}
	// Source untouched.
	if b.Counter("hits") != 3 || b.Histogram("lat_ms").Count() != 2 {
		t.Fatal("merge mutated the source registry")
	}
	// Self-merge and nil-merge are no-ops.
	a.Merge(a)
	a.Merge(nil)
	if a.Counter("hits") != 5 {
		t.Fatal("self-merge doubled counters")
	}
}

// TestRegistryMergeOrderDeterminism: merging the same shard registries in
// index order renders identically however the shards were produced.
func TestRegistryMergeOrderDeterminism(t *testing.T) {
	build := func() []*Registry {
		shards := make([]*Registry, 4)
		for i := range shards {
			shards[i] = NewRegistry()
			shards[i].Add("n", float64(i))
			shards[i].Set("g", float64(i))
			shards[i].Observe("h_ms", float64(i*i))
		}
		return shards
	}
	render := func(shards []*Registry) string {
		merged := NewRegistry()
		for _, s := range shards {
			merged.Merge(s)
		}
		return merged.Render()
	}
	if render(build()) != render(build()) {
		t.Fatal("index-order merge is not deterministic")
	}
}

// TestReservoirHistogramMerge: reservoir histograms keep exact count/sum
// and the retained union after a merge.
func TestReservoirHistogramMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.EnableReservoir(8, 1)
	b.EnableReservoir(8, 2)
	for i := 0; i < 100; i++ {
		a.Observe("lat_ms", float64(i))
		b.Observe("lat_ms", float64(100+i))
	}
	a.Merge(b)
	h := a.Histogram("lat_ms")
	if h.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", h.Count())
	}
	if h.Retained() != 16 {
		t.Fatalf("merged retained = %d, want union of both reservoirs (16)", h.Retained())
	}
	if h.Min() != 0 || h.Max() != 199 {
		t.Fatalf("merged min/max = %v/%v, want 0/199", h.Min(), h.Max())
	}
}

// TestPreResolvedHandlesInvisibleUntilUsed: components resolve handles at
// construction, often for metrics that never fire in a given run. Those
// must not appear in Snapshot/Render/Merge output — reports stay identical
// to the old create-on-first-emission behavior.
func TestPreResolvedHandlesInvisibleUntilUsed(t *testing.T) {
	r := NewRegistry()
	idle := r.CounterHandle("offload.breaker.opened")
	idleHist := r.HistogramHandle("offload.backoff_ms")
	used := r.CounterHandle("offload.decisions")
	usedHist := r.HistogramHandle("offload.total_ms")
	used.Inc()
	usedHist.Observe(12)

	snap := r.Snapshot()
	if _, ok := snap.Counters["offload.breaker.opened"]; ok {
		t.Fatal("untouched counter handle leaked into Snapshot")
	}
	if _, ok := snap.Histograms["offload.backoff_ms"]; ok {
		t.Fatal("unobserved histogram handle leaked into Snapshot")
	}
	if snap.Counters["offload.decisions"] != 1 {
		t.Fatalf("touched counter = %v, want 1", snap.Counters["offload.decisions"])
	}
	if snap.Histograms["offload.total_ms"].Count != 1 {
		t.Fatal("observed histogram missing from Snapshot")
	}
	if render := r.Render(); strings.Contains(render, "breaker") || strings.Contains(render, "backoff") {
		t.Fatalf("untouched handles leaked into Render:\n%s", render)
	}
	if r.Histogram("offload.backoff_ms") != nil {
		t.Fatal("unobserved histogram should read as absent")
	}

	dst := NewRegistry()
	dst.Merge(r)
	if got := dst.Render(); got != r.Render() {
		t.Fatalf("merge output differs:\n%s\nvs\n%s", got, r.Render())
	}

	// First use makes the handle visible with the right value.
	idle.Add(2)
	idleHist.Observe(5)
	snap = r.Snapshot()
	if snap.Counters["offload.breaker.opened"] != 2 {
		t.Fatalf("counter after first use = %v, want 2", snap.Counters["offload.breaker.opened"])
	}
	if snap.Histograms["offload.backoff_ms"].Count != 1 {
		t.Fatal("histogram after first observe missing")
	}
}

// TestMergeReservoirQuantilesShardCountInvariant: the sharded-runner
// contract with EnableReservoir active — distributing the same per-shard
// observations over any worker count and merging in index order must yield
// identical quantile summaries, run after run.
func TestMergeReservoirQuantilesShardCountInvariant(t *testing.T) {
	buildShards := func() []*Registry {
		shards := make([]*Registry, 4)
		for i := range shards {
			shards[i] = NewRegistry()
			shards[i].EnableReservoir(16, 7+int64(i)) // runner: seed + index
			for j := 0; j < 200; j++ {
				shards[i].Observe("offload.uplink_ms", float64(i*1000+j))
			}
		}
		return shards
	}
	merge := func(shards []*Registry) HistogramSummary {
		m := NewRegistry()
		for _, s := range shards {
			m.Merge(s)
		}
		return m.Histogram("offload.uplink_ms").Summary()
	}
	first := merge(buildShards())
	for run := 0; run < 3; run++ {
		if got := merge(buildShards()); got != first {
			t.Fatalf("merged summary varies across runs:\n%+v\nvs\n%+v", got, first)
		}
	}
	if first.Count != 800 || first.Retained != 64 {
		t.Fatalf("merged count/retained = %d/%d, want 800/64", first.Count, first.Retained)
	}
	if first.Min != 0 || first.Max != 3199 {
		t.Fatalf("merged min/max = %v/%v", first.Min, first.Max)
	}
	if math.IsNaN(first.P50) || first.P50 < first.Min || first.P50 > first.Max {
		t.Fatalf("merged p50 out of range: %v", first.P50)
	}
}

// TestGenerationTracksInterning: samplers rely on Generation moving exactly
// when a counter or histogram is interned.
func TestGenerationTracksInterning(t *testing.T) {
	r := NewRegistry()
	g0 := r.Generation()
	c := r.CounterHandle("a")
	if r.Generation() != g0+1 {
		t.Fatalf("generation after counter intern = %d", r.Generation())
	}
	r.CounterHandle("a") // re-resolve: no bump
	c.Add(5)             // value changes: no bump
	if r.Generation() != g0+1 {
		t.Fatal("generation moved without interning")
	}
	r.HistogramHandle("h")
	r.Set("gauge", 1) // gauges are not sampled: no bump
	if r.Generation() != g0+2 {
		t.Fatalf("generation after histogram intern = %d", r.Generation())
	}

	src := NewRegistry()
	src.Observe("h2", 1)
	r.Merge(src)
	if r.Generation() != g0+3 {
		t.Fatalf("generation after merge with new histogram = %d", r.Generation())
	}
	var nilReg *Registry
	if nilReg.Generation() != 0 {
		t.Fatal("nil registry generation")
	}
}

// TestEachMetricSortedAndComplete: EachMetric enumerates interned handles
// (touched or not) in name order.
func TestEachMetricSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.CounterHandle("z.count")
	r.Add("a.count", 1)
	r.HistogramHandle("m.lat_ms")
	var counters, hists []string
	r.EachMetric(
		func(name string, c *Counter) { counters = append(counters, name) },
		func(name string, h *HistogramHandle) { hists = append(hists, name) },
	)
	if len(counters) != 2 || counters[0] != "a.count" || counters[1] != "z.count" {
		t.Fatalf("counters = %v", counters)
	}
	if len(hists) != 1 || hists[0] != "m.lat_ms" {
		t.Fatalf("hists = %v", hists)
	}
	var nilReg *Registry
	nilReg.EachMetric(nil, nil) // must not panic
}

// TestCountSum: the sampler's allocation-free histogram read.
func TestCountSum(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramHandle("lat_ms")
	if c, s := h.CountSum(); c != 0 || s != 0 {
		t.Fatalf("empty CountSum = %d/%v", c, s)
	}
	h.Observe(2)
	h.Observe(3)
	if c, s := h.CountSum(); c != 2 || s != 5 {
		t.Fatalf("CountSum = %d/%v", c, s)
	}
	var nilH *HistogramHandle
	if c, s := nilH.CountSum(); c != 0 || s != 0 {
		t.Fatal("nil CountSum")
	}
	var nilC *Counter
	if nilC.Touched() {
		t.Fatal("nil counter touched")
	}
}

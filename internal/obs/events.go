// Package obs is the platform's virtual-time observability layer: a
// flight recorder of structured events (Recorder) and metric time-series
// with a kernel-scheduled sampler (SeriesStore, Sampler).
//
// Everything here is stamped from the simulation clock and ordered by
// (virtual time, emission sequence), so two runs with the same seed export
// byte-identical event logs and series — including sharded or replicated
// runs, provided lanes are merged in a canonical order (the same contract
// telemetry.Registry.Merge and trace.Tracer.Merge follow).
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Severity classifies flight-recorder events.
type Severity int

const (
	SevDebug Severity = iota
	SevInfo
	SevWarn
	SevError
)

var sevNames = [...]string{"debug", "info", "warn", "error"}

// String renders the severity's lowercase name.
func (s Severity) String() string {
	if s < SevDebug || s > SevError {
		return fmt.Sprintf("severity(%d)", int(s))
	}
	return sevNames[s]
}

// ParseSeverity maps a name ("debug", "info", "warn", "error") back to its
// Severity.
func ParseSeverity(name string) (Severity, error) {
	for i, n := range sevNames {
		if n == name {
			return Severity(i), nil
		}
	}
	return SevDebug, fmt.Errorf("obs: unknown severity %q", name)
}

// MarshalJSON renders the severity as its name string.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts a severity name string.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	sev, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = sev
	return nil
}

// Field is one key-value annotation on an event. Values are pre-rendered to
// strings so emission is allocation-light and export deterministic (same
// scheme as trace.Attr).
type Field struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// String builds a string field.
func String(key, value string) Field { return Field{Key: key, Value: value} }

// Int builds an integer field.
func Int(key string, v int) Field { return Field{Key: key, Value: strconv.Itoa(v)} }

// F64 builds a float field with stable two-decimal rendering.
func F64(key string, v float64) Field {
	return Field{Key: key, Value: strconv.FormatFloat(v, 'f', 2, 64)}
}

// Dur builds a duration field.
func Dur(key string, d time.Duration) Field { return Field{Key: key, Value: d.String()} }

// Bool builds a boolean field.
func Bool(key string, v bool) Field { return Field{Key: key, Value: strconv.FormatBool(v)} }

// Event is one flight-recorder entry: a named state transition stamped at a
// virtual time.
type Event struct {
	At        time.Duration `json:"atNs"`
	Component string        `json:"component"`
	Severity  Severity      `json:"severity"`
	Name      string        `json:"name"`
	Fields    []Field       `json:"fields,omitempty"`

	seq uint64 // emission order; breaks same-timestamp ties deterministically
}

// DefaultEventCapacity bounds a Recorder when the caller passes no capacity.
const DefaultEventCapacity = 4096

// Recorder is a bounded ring of structured events. When full, the oldest
// event is overwritten and counted as dropped. All methods are nil-safe, so
// components carry an optional recorder without guarding each call site.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	start   int
	n       int
	seq     uint64
	dropped int
}

// NewRecorder returns a recorder retaining at most capacity events
// (DefaultEventCapacity when non-positive).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Enabled reports whether events are being recorded; emitters guard field
// construction with it so a nil recorder costs nothing.
func (r *Recorder) Enabled() bool { return r != nil }

// Emit appends an event at virtual time at.
func (r *Recorder) Emit(at time.Duration, component string, sev Severity, name string, fields ...Field) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	ev := Event{At: at, Component: component, Severity: sev, Name: name, Fields: fields, seq: r.seq}
	if r.n == len(r.buf) {
		r.buf[r.start] = ev
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	} else {
		r.buf[(r.start+r.n)%len(r.buf)] = ev
		r.n++
	}
	r.mu.Unlock()
}

// Len returns how many events are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many events the ring discarded (its own overwrites
// plus dropped counts carried over by Merge).
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the retained events ordered by (virtual time, emission
// sequence). The slice is a copy; mutating it cannot touch the recorder.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// EventsSince filters the ordered events: only those strictly after since
// (pass a negative since for all), matching component (empty matches all),
// at or above minSev.
func (r *Recorder) EventsSince(since time.Duration, component string, minSev Severity) []Event {
	all := r.Events()
	out := make([]Event, 0, len(all))
	for _, ev := range all {
		if ev.At <= since && since >= 0 {
			continue
		}
		if component != "" && ev.Component != component {
			continue
		}
		if ev.Severity < minSev {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// Merge appends src's retained events (in src's own order) into r,
// re-sequencing them after r's existing events, and carries src's dropped
// count over. Merging lanes in a canonical order therefore deterministically
// breaks same-timestamp ties no matter how many workers recorded them. src
// is only read; merging a recorder into itself or merging nil is a no-op.
func (r *Recorder) Merge(src *Recorder) {
	if r == nil || src == nil || r == src {
		return
	}
	src.mu.Lock()
	events := make([]Event, 0, src.n)
	for i := 0; i < src.n; i++ {
		events = append(events, src.buf[(src.start+i)%len(src.buf)])
	}
	dropped := src.dropped
	src.mu.Unlock()
	for _, ev := range events {
		r.Emit(ev.At, ev.Component, ev.Severity, ev.Name, ev.Fields...)
	}
	r.mu.Lock()
	r.dropped += dropped
	r.mu.Unlock()
}

// Reset discards all retained events and the dropped count, keeping the
// capacity.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.start, r.n, r.seq, r.dropped = 0, 0, 0, 0
	r.mu.Unlock()
}

// RenderTable renders the ordered events as a fixed-width text table, one
// event per line, deterministic for a deterministic event log.
func (r *Recorder) RenderTable() string {
	events := r.Events()
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-10s %-6s %-28s %s\n", "TIME", "COMPONENT", "SEV", "EVENT", "FIELDS")
	for _, ev := range events {
		fields := make([]string, 0, len(ev.Fields))
		for _, f := range ev.Fields {
			fields = append(fields, f.Key+"="+f.Value)
		}
		fmt.Fprintf(&b, "%-12s %-10s %-6s %-28s %s\n",
			fmtDuration(ev.At), ev.Component, ev.Severity.String(), ev.Name, strings.Join(fields, " "))
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(%d events dropped by the ring)\n", d)
	}
	return b.String()
}

// fmtDuration renders a virtual time with millisecond precision, stable
// across magnitudes (12.250s, not 12.25s / 12s250ms).
func fmtDuration(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 3, 64) + "s"
}

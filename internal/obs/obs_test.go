package obs

import (
	"encoding/json"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

func TestRecorderOrderAndFilters(t *testing.T) {
	r := NewRecorder(16)
	r.Emit(20*time.Millisecond, "offload", SevWarn, "breaker.open", String("dest", "rsu-1"))
	r.Emit(10*time.Millisecond, "faults", SevInfo, "outage.begin")
	r.Emit(20*time.Millisecond, "fleet", SevDebug, "commit.begin")

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Name != "outage.begin" {
		t.Fatalf("events not time-ordered: %v", evs)
	}
	// Same-timestamp ties break by emission order.
	if evs[1].Name != "breaker.open" || evs[2].Name != "commit.begin" {
		t.Fatalf("tie-break wrong: %v, %v", evs[1].Name, evs[2].Name)
	}

	if got := r.EventsSince(10*time.Millisecond, "", SevDebug); len(got) != 2 {
		t.Fatalf("since filter: got %d", len(got))
	}
	if got := r.EventsSince(-1, "offload", SevDebug); len(got) != 1 || got[0].Component != "offload" {
		t.Fatalf("component filter: %v", got)
	}
	if got := r.EventsSince(-1, "", SevWarn); len(got) != 1 || got[0].Severity != SevWarn {
		t.Fatalf("severity filter: %v", got)
	}
}

func TestRecorderRingDropsOldest(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Emit(time.Duration(i)*time.Millisecond, "c", SevInfo, "ev")
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d", r.Dropped())
	}
	evs := r.Events()
	if evs[0].At != 2*time.Millisecond {
		t.Fatalf("oldest retained = %v", evs[0].At)
	}
}

func TestRecorderMergeCanonicalOrder(t *testing.T) {
	mk := func() (*Recorder, *Recorder) {
		a, b := NewRecorder(8), NewRecorder(8)
		a.Emit(5*time.Millisecond, "laneA", SevInfo, "x")
		b.Emit(5*time.Millisecond, "laneB", SevInfo, "y")
		return a, b
	}
	a1, b1 := mk()
	m1 := NewRecorder(16)
	m1.Merge(a1)
	m1.Merge(b1)

	// Merging the same lanes in the same canonical order must produce the
	// same tie-break regardless of which lane emitted first in wall time.
	a2, b2 := mk()
	m2 := NewRecorder(16)
	m2.Merge(a2)
	m2.Merge(b2)

	e1, e2 := m1.Events(), m2.Events()
	if e1[0].Component != "laneA" || e2[0].Component != "laneA" {
		t.Fatalf("canonical merge order not respected: %v / %v", e1[0].Component, e2[0].Component)
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, sev := range []Severity{SevDebug, SevInfo, SevWarn, SevError} {
		b, err := json.Marshal(sev)
		if err != nil {
			t.Fatal(err)
		}
		var got Severity
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != sev {
			t.Fatalf("round trip %v -> %v", sev, got)
		}
	}
	var bad Severity
	if err := json.Unmarshal([]byte(`"loud"`), &bad); err == nil {
		t.Fatal("bad severity accepted")
	}
}

func TestSeriesPayloadDeltaAndRates(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.CounterHandle("offload.failures")
	store := NewSeriesStore(32)
	sp := NewSampler(store, 100*time.Millisecond)
	sp.Watch(reg)

	c.Add(2)
	sp.SampleAt(100 * time.Millisecond)
	c.Add(3)
	sp.SampleAt(200 * time.Millisecond)
	sp.SampleAt(300 * time.Millisecond)

	p := store.Payload(-1)
	if len(p.Series) != 1 {
		t.Fatalf("series count = %d", len(p.Series))
	}
	s := p.Series[0]
	if s.Name != "offload.failures" || s.Kind != "counter" || s.Points != 3 {
		t.Fatalf("payload header: %+v", s)
	}
	if s.BaseNs != int64(100*time.Millisecond) {
		t.Fatalf("BaseNs = %d", s.BaseNs)
	}
	wantDt := []int64{int64(100 * time.Millisecond), int64(100 * time.Millisecond)}
	if !reflect.DeepEqual(s.DtNs, wantDt) {
		t.Fatalf("DtNs = %v", s.DtNs)
	}
	if !reflect.DeepEqual(s.V, []float64{2, 5, 5}) {
		t.Fatalf("V = %v", s.V)
	}
	// First window runs from t=0 (value 0): 2/0.1s = 20/s, then 30/s, 0/s.
	if !reflect.DeepEqual(s.Rate, []float64{20, 30, 0}) {
		t.Fatalf("Rate = %v", s.Rate)
	}
	if p.WatermarkNs != int64(300*time.Millisecond) {
		t.Fatalf("watermark = %d", p.WatermarkNs)
	}

	// since filters strictly-after.
	p2 := store.Payload(200 * time.Millisecond)
	if p2.Series[0].Points != 1 || p2.Series[0].BaseNs != int64(300*time.Millisecond) {
		t.Fatalf("since payload: %+v", p2.Series[0])
	}
	// Rate of the first windowed point still uses the true predecessor.
	if p2.Series[0].Rate[0] != 0 {
		t.Fatalf("since rate = %v", p2.Series[0].Rate)
	}
}

func TestSamplerHistogramAndGaugeSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.HistogramHandle("offload.uplink_ms")
	store := NewSeriesStore(32)
	sp := NewSampler(store, 50*time.Millisecond)
	sp.Watch(reg)

	sp.SampleAt(0) // nothing visible yet
	h.Observe(4)
	h.Observe(6)
	sp.SampleAt(50 * time.Millisecond)
	store.RecordGauge("fleet.deadline_hit_rate", 50*time.Millisecond, 0.75)

	p := store.Payload(-1)
	if len(p.Series) != 2 {
		t.Fatalf("series: %+v", p.Series)
	}
	g, hs := p.Series[0], p.Series[1]
	if g.Name != "fleet.deadline_hit_rate" || g.Kind != "gauge" || g.V[0] != 0.75 || g.Rate != nil {
		t.Fatalf("gauge payload: %+v", g)
	}
	if hs.Kind != "histogram" || hs.Points != 1 || hs.V[0] != 2 || hs.Sum[0] != 10 {
		t.Fatalf("hist payload: %+v", hs)
	}
}

func TestSamplerMultiLaneSumsMatchSingleLane(t *testing.T) {
	// Two lanes bumping the same metric must sample to the same fleet-level
	// series as one lane bumping it twice as much.
	regA, regB := telemetry.NewRegistry(), telemetry.NewRegistry()
	regA.Add("fleet.invocations", 3)
	regB.Add("fleet.invocations", 4)
	split := NewSeriesStore(8)
	spSplit := NewSampler(split, 100*time.Millisecond)
	spSplit.Watch(regA)
	spSplit.Watch(regB)
	spSplit.SampleAt(100 * time.Millisecond)

	regOne := telemetry.NewRegistry()
	regOne.Add("fleet.invocations", 7)
	one := NewSeriesStore(8)
	spOne := NewSampler(one, 100*time.Millisecond)
	spOne.Watch(regOne)
	spOne.SampleAt(100 * time.Millisecond)

	a, b := split.Payload(-1), one.Payload(-1)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("lane split changed series:\n%+v\n%+v", a, b)
	}
}

func TestSeriesStoreMergeUnionAndOrderIndependence(t *testing.T) {
	build := func(vals []float64, times []time.Duration) *SeriesStore {
		reg := telemetry.NewRegistry()
		st := NewSeriesStore(16)
		sp := NewSampler(st, 100*time.Millisecond)
		sp.Watch(reg)
		var total float64
		for i, v := range vals {
			reg.Add("x.count", v-total)
			total = v
			sp.SampleAt(times[i])
		}
		return st
	}
	// Replica stores sampled on the same schedule: merged series must be
	// the pointwise sum in either merge direction.
	a := build([]float64{1, 2}, []time.Duration{100 * time.Millisecond, 200 * time.Millisecond})
	b := build([]float64{10, 20}, []time.Duration{100 * time.Millisecond, 200 * time.Millisecond})

	m1 := NewSeriesStore(16)
	m1.Merge(a)
	m1.Merge(b)
	p1 := m1.Payload(-1)
	if !reflect.DeepEqual(p1.Series[0].V, []float64{11, 22}) {
		t.Fatalf("merged V = %v", p1.Series[0].V)
	}

	m2 := NewSeriesStore(16)
	m2.Merge(b)
	m2.Merge(a)
	if p2 := m2.Payload(-1); !reflect.DeepEqual(p1, p2) {
		t.Fatalf("merge order changed payload:\n%+v\n%+v", p1, p2)
	}

	// Disjoint timestamps union with carry-forward.
	c := build([]float64{5}, []time.Duration{150 * time.Millisecond})
	m3 := NewSeriesStore(16)
	m3.Merge(a)
	m3.Merge(c)
	got := m3.Payload(-1).Series[0]
	if !reflect.DeepEqual(got.V, []float64{1, 6, 7}) {
		t.Fatalf("union V = %v", got.V)
	}
}

func TestSeriesRingDropsOldest(t *testing.T) {
	st := NewSeriesStore(2)
	st.RecordGauge("g", 1*time.Millisecond, 1)
	st.RecordGauge("g", 2*time.Millisecond, 2)
	st.RecordGauge("g", 3*time.Millisecond, 3)
	s := st.Payload(-1).Series[0]
	if s.Points != 2 || s.BaseNs != int64(2*time.Millisecond) || s.Dropped != 1 {
		t.Fatalf("ring payload: %+v", s)
	}
}

// TestSamplerSamplePathZeroAlloc pins the tentpole contract: once series
// exist, a sample tick allocates nothing.
func TestSamplerSamplePathZeroAlloc(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.EnableReservoir(64, 1)
	counters := make([]*telemetry.Counter, 16)
	for i := range counters {
		counters[i] = reg.CounterHandle("c.metric_" + string(rune('a'+i)))
		counters[i].Inc()
	}
	hists := make([]*telemetry.HistogramHandle, 4)
	for i := range hists {
		hists[i] = reg.HistogramHandle("h.metric_" + string(rune('a'+i)))
		hists[i].Observe(1)
	}
	store := NewSeriesStore(256)
	sp := NewSampler(store, 100*time.Millisecond)
	sp.Watch(reg)
	sp.SampleAt(0) // warm: resync + series creation

	now := 100 * time.Millisecond
	allocs := testing.AllocsPerRun(100, func() {
		counters[0].Inc()
		hists[0].Observe(2)
		sp.SampleAt(now)
		now += 100 * time.Millisecond
	})
	if allocs != 0 {
		t.Fatalf("sample path allocates %.1f per tick", allocs)
	}
}

func TestSamplerStartOnEngine(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.CounterHandle("tick.count")
	c.Inc()
	store := NewSeriesStore(64)
	sp := NewSampler(store, 100*time.Millisecond)
	sp.Watch(reg)

	eng := sim.NewEngine(1)
	stop, err := sp.Start(eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(450 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	stop()
	// Baseline sample at t=0 plus ticks at 100..400ms.
	s := store.Payload(-1).Series[0]
	if s.Points != 5 {
		t.Fatalf("points = %d", s.Points)
	}
	if sp.Ticks() != 5 {
		t.Fatalf("ticks = %d", sp.Ticks())
	}
	if _, err := sp.Start(nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}

// TestMergeAcrossCommitLanesPreservesAtSeqOrder is the regression test
// for per-lane commit markers: events recorded on separate lane
// recorders at the SAME virtual time must, after a canonical-order
// Merge, come out ordered by (At, merge sequence) — i.e. lane order for
// ties — identically on every run, no matter how the lanes were
// scheduled while recording.
func TestMergeAcrossCommitLanesPreservesAtSeqOrder(t *testing.T) {
	const epoch = 250 * time.Millisecond
	mkLanes := func() []*Recorder {
		lanes := make([]*Recorder, 3)
		for lane := range lanes {
			lanes[lane] = NewRecorder(16)
		}
		// Deliberately emit in non-canonical lane order (2, 0, 1) to model
		// arbitrary commit-lane scheduling; each marker carries the per-lane
		// fields the fleet's commit scheduler attaches.
		for _, lane := range []int{2, 0, 1} {
			lanes[lane].Emit(0, "fleet", SevDebug, "commit.lane.begin",
				Int("lane", lane), String("domain", "cell:rsu-"+strconv.Itoa(lane)), Int("pending", lane+1))
			lanes[lane].Emit(epoch, "fleet", SevDebug, "commit.lane.end",
				Int("lane", lane), String("domain", "cell:rsu-"+strconv.Itoa(lane)), Int("committed", lane+1))
		}
		return lanes
	}
	mergeAll := func(lanes []*Recorder) *Recorder {
		merged := NewRecorder(32)
		for _, r := range lanes { // canonical order: lane index
			merged.Merge(r)
		}
		return merged
	}
	a, b := mergeAll(mkLanes()), mergeAll(mkLanes())
	if ra, rb := a.RenderTable(), b.RenderTable(); ra != rb {
		t.Fatalf("merged lane tables diverged:\n%s\nvs\n%s", ra, rb)
	}
	events := a.Events()
	if len(events) != 6 {
		t.Fatalf("merged %d events, want 6", len(events))
	}
	for i, ev := range events {
		wantAt, wantLane := time.Duration(0), i
		if i >= 3 {
			wantAt, wantLane = epoch, i-3
		}
		if ev.At != wantAt {
			t.Fatalf("event %d at %v, want %v (At must dominate)", i, ev.At, wantAt)
		}
		if got := ev.Fields[0].Value; got != strconv.Itoa(wantLane) {
			t.Fatalf("event %d lane = %s, want %d (same-At ties must follow canonical merge order)", i, got, wantLane)
		}
		if i > 0 && events[i-1].At == ev.At && events[i-1].seq >= ev.seq {
			t.Fatalf("same-At events not strictly seq-ordered at %d: %d >= %d", i, events[i-1].seq, ev.seq)
		}
	}
}

package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// SeriesKind says how a series' points are produced and merged.
type SeriesKind int

const (
	// KindCounter points are cumulative counts; merge sums pointwise and
	// export derives windowed rates.
	KindCounter SeriesKind = iota
	// KindGauge points are instantaneous readings; merge is last-wins.
	KindGauge
	// KindHistogram points carry cumulative (count, sum) pairs; merge sums
	// pointwise and export derives sample rates.
	KindHistogram
)

var kindNames = [...]string{"counter", "gauge", "histogram"}

// String renders the kind's lowercase name.
func (k SeriesKind) String() string {
	if k < KindCounter || k > KindHistogram {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// DefaultSeriesCapacity bounds each series ring when the caller passes no
// capacity.
const DefaultSeriesCapacity = 1024

// DefaultSampleInterval is the sampler's virtual-time tick period when the
// caller passes none.
const DefaultSampleInterval = 100 * time.Millisecond

// Series is one metric's ring of (virtual time, value) points. For
// histograms the auxiliary array carries the cumulative sum alongside the
// cumulative count. When the ring fills, the oldest point is overwritten
// and counted as dropped.
type Series struct {
	name  string
	kind  SeriesKind
	times []int64 // virtual ns
	v     []float64
	aux   []float64 // histogram cumulative sum; nil otherwise
	start int
	n     int

	dropped int

	// stage/stageAux accumulate one tick's cross-lane sums before the
	// sampler appends a single fleet-level point (see Sampler.SampleAt).
	stage    float64
	stageAux float64
}

// append pushes one point, overwriting the oldest when full. Callers hold
// the owning store's lock.
func (se *Series) append(atNs int64, v, aux float64) {
	if se.n == len(se.times) {
		se.times[se.start] = atNs
		se.v[se.start] = v
		if se.aux != nil {
			se.aux[se.start] = aux
		}
		se.start = (se.start + 1) % len(se.times)
		se.dropped++
		return
	}
	i := (se.start + se.n) % len(se.times)
	se.times[i] = atNs
	se.v[i] = v
	if se.aux != nil {
		se.aux[i] = aux
	}
	se.n++
}

// point returns the k-th retained point (0 = oldest). Callers hold the
// owning store's lock.
func (se *Series) point(k int) (atNs int64, v, aux float64) {
	i := (se.start + k) % len(se.times)
	if se.aux != nil {
		return se.times[i], se.v[i], se.aux[i]
	}
	return se.times[i], se.v[i], 0
}

// SeriesStore holds every metric series of one run (or one lane of a
// sharded run). It is safe for concurrent use: the sampler appends under
// the store lock while the REST tier exports payloads.
type SeriesStore struct {
	mu  sync.Mutex
	cap int
	m   map[string]*Series
}

// NewSeriesStore returns an empty store whose series each retain at most
// capacity points (DefaultSeriesCapacity when non-positive).
func NewSeriesStore(capacity int) *SeriesStore {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &SeriesStore{cap: capacity, m: make(map[string]*Series)}
}

// Enabled reports whether the store records anything (nil-safe guard).
func (s *SeriesStore) Enabled() bool { return s != nil }

// ensureLocked interns a series. Callers hold s.mu.
func (s *SeriesStore) ensureLocked(name string, kind SeriesKind) *Series {
	se, ok := s.m[name]
	if ok {
		return se
	}
	se = &Series{
		name:  name,
		kind:  kind,
		times: make([]int64, s.cap),
		v:     make([]float64, s.cap),
	}
	if kind == KindHistogram {
		se.aux = make([]float64, s.cap)
	}
	s.m[name] = se
	return se
}

// lookupLocked returns the series or nil without creating it. Callers hold
// s.mu.
func (s *SeriesStore) lookupLocked(name string) *Series { return s.m[name] }

// RecordGauge appends an instantaneous reading to the named gauge series.
// Unlike counters and histograms — which the Sampler snapshots on its tick —
// gauge series are fed explicitly by whoever computes the reading.
func (s *SeriesStore) RecordGauge(name string, at time.Duration, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ensureLocked(name, KindGauge).append(int64(at), v, 0)
	s.mu.Unlock()
}

// Len returns the number of distinct series.
func (s *SeriesStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Watermark returns the largest point timestamp across all series (zero
// when empty).
func (s *SeriesStore) Watermark() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var max int64
	for _, se := range s.m {
		if se.n == 0 {
			continue
		}
		t, _, _ := se.point(se.n - 1)
		if t > max {
			max = t
		}
	}
	return time.Duration(max)
}

// seriesPoints snapshots one series' retained points in time order.
type seriesPoints struct {
	kind    SeriesKind
	dropped int
	t       []int64
	v       []float64
	aux     []float64
}

// snapshotLocked copies a series' points. Callers hold the store lock.
func (se *Series) snapshotLocked() seriesPoints {
	sp := seriesPoints{
		kind:    se.kind,
		dropped: se.dropped,
		t:       make([]int64, se.n),
		v:       make([]float64, se.n),
	}
	if se.aux != nil {
		sp.aux = make([]float64, se.n)
	}
	for k := 0; k < se.n; k++ {
		t, v, aux := se.point(k)
		sp.t[k] = t
		sp.v[k] = v
		if sp.aux != nil {
			sp.aux[k] = aux
		}
	}
	return sp
}

// Merge folds src's series into s on the union of their timestamps:
// counter and histogram points (cumulative) sum pointwise with values
// carried forward across each side's gaps, gauges take src's reading at
// shared timestamps. Merging replica stores in index order therefore yields
// the same fleet-level series no matter how many workers recorded them. src
// is only read; merging a store into itself or merging nil is a no-op.
func (s *SeriesStore) Merge(src *SeriesStore) {
	if s == nil || src == nil || s == src {
		return
	}
	src.mu.Lock()
	names := make([]string, 0, len(src.m))
	for n := range src.m {
		names = append(names, n)
	}
	sort.Strings(names)
	snaps := make([]seriesPoints, len(names))
	for i, n := range names {
		snaps[i] = src.m[n].snapshotLocked()
	}
	src.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	for i, name := range names {
		sp := snaps[i]
		dst := s.ensureLocked(name, sp.kind)
		ds := dst.snapshotLocked()
		t, v, aux := mergePoints(ds, sp)
		// Rewrite the ring from the merged union, keeping the newest cap
		// points.
		droppedBefore := dst.dropped + sp.dropped
		dst.start, dst.n, dst.dropped = 0, 0, droppedBefore
		lo := 0
		if len(t) > len(dst.times) {
			lo = len(t) - len(dst.times)
			dst.dropped += lo
		}
		for k := lo; k < len(t); k++ {
			dst.append(t[k], v[k], aux[k])
		}
	}
}

// mergePoints unions two time-ordered point sets. Cumulative kinds
// (counter, histogram) sum with carry-forward; gauges prefer b's reading on
// shared timestamps and otherwise interleave.
func mergePoints(a, b seriesPoints) (t []int64, v, aux []float64) {
	auxAt := func(sp seriesPoints, i int) float64 {
		if sp.aux != nil {
			return sp.aux[i]
		}
		return 0
	}
	cumulative := a.kind != KindGauge
	var lastAV, lastAX, lastBV, lastBX float64
	i, j := 0, 0
	for i < len(a.t) || j < len(b.t) {
		var at int64
		switch {
		case i >= len(a.t):
			at = b.t[j]
		case j >= len(b.t):
			at = a.t[i]
		case a.t[i] <= b.t[j]:
			at = a.t[i]
		default:
			at = b.t[j]
		}
		tookB := false
		var bV, bX float64
		if i < len(a.t) && a.t[i] == at {
			lastAV, lastAX = a.v[i], auxAt(a, i)
			i++
		}
		if j < len(b.t) && b.t[j] == at {
			lastBV, lastBX = b.v[j], auxAt(b, j)
			bV, bX = lastBV, lastBX
			tookB = true
			j++
		}
		t = append(t, at)
		if cumulative {
			v = append(v, lastAV+lastBV)
			aux = append(aux, lastAX+lastBX)
		} else if tookB {
			v = append(v, bV)
			aux = append(aux, bX)
		} else {
			v = append(v, lastAV)
			aux = append(aux, lastAX)
		}
	}
	return t, v, aux
}

// SeriesPayload is one series' JSON export: delta-encoded timestamps plus
// values and, for cumulative kinds, windowed per-second rates.
type SeriesPayload struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Points int    `json:"points"`
	// BaseNs is the first included point's virtual timestamp; DtNs[i] is
	// the gap to point i+1 (len Points-1).
	BaseNs int64   `json:"baseNs"`
	DtNs   []int64 `json:"dtNs,omitempty"`
	// V holds counter counts, gauge readings, or histogram sample counts.
	V []float64 `json:"v"`
	// Sum holds histogram cumulative sums (histogram kind only).
	Sum []float64 `json:"sum,omitempty"`
	// Rate holds windowed per-second rates for cumulative kinds.
	Rate    []float64 `json:"ratePerSec,omitempty"`
	Dropped int       `json:"dropped,omitempty"`
}

// Payload is the `/v1/metrics/series` response body.
type Payload struct {
	WatermarkNs int64           `json:"watermarkNs"`
	Series      []SeriesPayload `json:"series"`
}

// Frame is one `/v1/stream` chunk: everything that happened since the
// previous watermark.
type Frame struct {
	WatermarkNs int64    `json:"watermarkNs"`
	Series      *Payload `json:"series,omitempty"`
	Events      []Event  `json:"events,omitempty"`
	// Final marks the last frame of a draining server: the stream ends
	// cleanly after it and clients should not reconnect.
	Final bool `json:"final,omitempty"`
}

// Payload exports every series, sorted by name, keeping only points
// strictly after since (pass a negative since for all points). Windowed
// rates use each point's true predecessor even when it falls before the
// window.
func (s *SeriesStore) Payload(since time.Duration) Payload {
	p := Payload{Series: []SeriesPayload{}}
	if s == nil {
		return p
	}
	p.WatermarkNs = int64(s.Watermark())
	s.mu.Lock()
	names := make([]string, 0, len(s.m))
	for n := range s.m {
		names = append(names, n)
	}
	sort.Strings(names)
	snaps := make([]seriesPoints, len(names))
	for i, n := range names {
		snaps[i] = s.m[n].snapshotLocked()
	}
	s.mu.Unlock()

	for i, name := range names {
		sp := snaps[i]
		lo := 0
		for lo < len(sp.t) && since >= 0 && time.Duration(sp.t[lo]) <= since {
			lo++
		}
		if lo == len(sp.t) {
			continue
		}
		out := SeriesPayload{
			Name:    name,
			Kind:    sp.kind.String(),
			Points:  len(sp.t) - lo,
			BaseNs:  sp.t[lo],
			Dropped: sp.dropped,
		}
		for k := lo; k < len(sp.t); k++ {
			if k > lo {
				out.DtNs = append(out.DtNs, sp.t[k]-sp.t[k-1])
			}
			out.V = append(out.V, sp.v[k])
			if sp.kind == KindHistogram {
				out.Sum = append(out.Sum, sp.aux[k])
			}
			if sp.kind != KindGauge {
				out.Rate = append(out.Rate, windowedRate(sp, k))
			}
		}
		p.Series = append(p.Series, out)
	}
	return p
}

// windowedRate computes the per-second increase of a cumulative series at
// point k over the window from its predecessor (or from t=0 with value 0
// for the first point).
func windowedRate(sp seriesPoints, k int) float64 {
	var prevT int64
	var prevV float64
	if k > 0 {
		prevT, prevV = sp.t[k-1], sp.v[k-1]
	}
	dt := sp.t[k] - prevT
	if dt <= 0 {
		return 0
	}
	return (sp.v[k] - prevV) / (float64(dt) / float64(time.Second))
}

// Render produces a deterministic one-line-per-series text summary, sorted
// by name.
func (s *SeriesStore) Render() string {
	p := s.Payload(-1)
	var b strings.Builder
	for _, sp := range p.Series {
		last := sp.V[len(sp.V)-1]
		end := sp.BaseNs
		for _, dt := range sp.DtNs {
			end += dt
		}
		fmt.Fprintf(&b, "series %-40s %-9s points=%-4d span=%s..%s last=%.2f",
			sp.Name, sp.Kind, sp.Points,
			fmtDuration(time.Duration(sp.BaseNs)), fmtDuration(time.Duration(end)), last)
		if len(sp.Rate) > 0 {
			fmt.Fprintf(&b, " rate=%.2f/s", sp.Rate[len(sp.Rate)-1])
		}
		if len(sp.Sum) > 0 {
			fmt.Fprintf(&b, " sum=%.2f", sp.Sum[len(sp.Sum)-1])
		}
		if sp.Dropped > 0 {
			fmt.Fprintf(&b, " dropped=%d", sp.Dropped)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// laneCounter caches one registry counter the sampler polls each tick. The
// series pointer stays nil until the counter is first touched, mirroring
// snapshot visibility (pre-resolved but never-bumped handles produce no
// series).
type laneCounter struct {
	name string
	c    *telemetry.Counter
	s    *Series
}

// laneHist caches one registry histogram likewise.
type laneHist struct {
	name string
	h    *telemetry.HistogramHandle
	s    *Series
}

// samplerLane is one watched registry with its cached handle lists,
// resynced when the registry's generation moves.
type samplerLane struct {
	reg      *telemetry.Registry
	gen      uint64
	counters []laneCounter
	hists    []laneHist
}

// Sampler snapshots every watched registry's counters and histograms into a
// SeriesStore on a virtual-time tick. Watching several registries (sharded
// fleets keep one telemetry lane per vehicle) stages per-lane values into a
// single fleet-level point per metric per tick, so the recorded series are
// identical for any shard or worker count.
//
// The steady-state sample path is allocation-free: handle lists are cached
// per lane and resynced only when a registry's generation moves, and a
// metric's series is created once, the first time it becomes visible.
//
// Sampler is not safe for concurrent use with itself; schedule SampleAt
// from a single simulation kernel (Start). The store it writes to may be
// read concurrently.
type Sampler struct {
	store    *SeriesStore
	interval time.Duration
	lanes    []*samplerLane
	active   []*Series
	isActive map[*Series]bool
	ticks    int
}

// NewSampler returns a sampler appending to store every interval of virtual
// time (DefaultSampleInterval when non-positive).
func NewSampler(store *SeriesStore, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	return &Sampler{store: store, interval: interval, isActive: make(map[*Series]bool)}
}

// Interval returns the virtual-time tick period.
func (sp *Sampler) Interval() time.Duration { return sp.interval }

// Store returns the series store the sampler appends to.
func (sp *Sampler) Store() *SeriesStore { return sp.store }

// Ticks returns how many samples have been taken.
func (sp *Sampler) Ticks() int { return sp.ticks }

// Watch adds a registry lane. Lanes contribute to shared metric series in
// the order they were added — add them in canonical merge order (injector
// first, vehicles by index) for shard-count-independent output. A nil
// registry is ignored.
func (sp *Sampler) Watch(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	sp.lanes = append(sp.lanes, &samplerLane{reg: reg})
}

// resync rebuilds a lane's cached handle lists after its registry interned
// new metrics, preserving already-bound series pointers via store lookup.
func (sp *Sampler) resync(ln *samplerLane, gen uint64) {
	ln.counters = ln.counters[:0]
	ln.hists = ln.hists[:0]
	ln.reg.EachMetric(
		func(name string, c *telemetry.Counter) {
			ln.counters = append(ln.counters, laneCounter{name: name, c: c})
		},
		func(name string, h *telemetry.HistogramHandle) {
			ln.hists = append(ln.hists, laneHist{name: name, h: h})
		},
	)
	sp.store.mu.Lock()
	for i := range ln.counters {
		ln.counters[i].s = sp.store.lookupLocked(ln.counters[i].name)
	}
	for i := range ln.hists {
		ln.hists[i].s = sp.store.lookupLocked(ln.hists[i].name)
	}
	sp.store.mu.Unlock()
	ln.gen = gen
}

// activateLocked interns a metric's series and registers it for per-tick
// appends (once). Callers hold the store lock.
func (sp *Sampler) activateLocked(name string, kind SeriesKind) *Series {
	se := sp.store.ensureLocked(name, kind)
	if !sp.isActive[se] {
		sp.isActive[se] = true
		sp.active = append(sp.active, se)
	}
	return se
}

// SampleAt takes one sample at virtual time now: every visible counter and
// histogram across all lanes becomes one appended point per metric.
func (sp *Sampler) SampleAt(now time.Duration) {
	for _, ln := range sp.lanes {
		if g := ln.reg.Generation(); g != ln.gen {
			sp.resync(ln, g)
		}
	}
	sp.store.mu.Lock()
	for _, ln := range sp.lanes {
		for i := range ln.counters {
			lc := &ln.counters[i]
			if lc.s == nil {
				if !lc.c.Touched() {
					continue
				}
				lc.s = sp.activateLocked(lc.name, KindCounter)
			} else if !sp.isActive[lc.s] {
				// Bound by an earlier resync before any lane touched it.
				sp.activateLocked(lc.name, lc.s.kind)
			}
			lc.s.stage += lc.c.Value()
		}
		for i := range ln.hists {
			lh := &ln.hists[i]
			count, sum := lh.h.CountSum()
			if lh.s == nil {
				if count == 0 {
					continue
				}
				lh.s = sp.activateLocked(lh.name, KindHistogram)
			} else if !sp.isActive[lh.s] {
				sp.activateLocked(lh.name, lh.s.kind)
			}
			lh.s.stage += float64(count)
			lh.s.stageAux += sum
		}
	}
	atNs := int64(now)
	for _, se := range sp.active {
		se.append(atNs, se.stage, se.stageAux)
		se.stage, se.stageAux = 0, 0
	}
	sp.store.mu.Unlock()
	sp.ticks++
}

// Start takes an immediate baseline sample and schedules one every interval
// of virtual time on eng. The returned stop cancels the periodic tick.
func (sp *Sampler) Start(eng *sim.Engine) (stop func(), err error) {
	if eng == nil {
		return nil, fmt.Errorf("obs: Start needs an engine")
	}
	sp.SampleAt(eng.Now())
	return eng.Every(sp.interval, func() { sp.SampleAt(eng.Now()) })
}

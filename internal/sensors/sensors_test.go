package sensors

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

func TestNewOBDValidation(t *testing.T) {
	if _, err := NewOBD(nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestOBDHealthyReading(t *testing.T) {
	o, err := NewOBD(sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	r := o.Read(time.Second, 100)
	if r.At != time.Second {
		t.Fatalf("At = %v", r.At)
	}
	if r.SpeedKPH < 95 || r.SpeedKPH > 105 {
		t.Fatalf("speed = %v, want ~100", r.SpeedKPH)
	}
	if r.RPM < 3000 || r.RPM > 4500 {
		t.Fatalf("RPM = %v, want ~3700 at 100 kph", r.RPM)
	}
	if len(r.DTCs) != 0 {
		t.Fatalf("healthy vehicle emitted DTCs: %v", r.DTCs)
	}
	if r.CoolantTempC < 85 || r.CoolantTempC > 95 {
		t.Fatalf("coolant = %v, want ~90", r.CoolantTempC)
	}
}

func TestOBDFaultProgressions(t *testing.T) {
	cases := []struct {
		fault FaultKind
		dtc   string
	}{
		{FaultOverheat, DTCOverheat},
		{FaultTireLeak, DTCTire},
		{FaultBatteryDrain, DTCBattery},
		{FaultMisfire, DTCMisfire},
	}
	for _, tc := range cases {
		o, _ := NewOBD(sim.NewRNG(2))
		o.InjectFault(tc.fault)
		found := false
		for i := 0; i < 200 && !found; i++ {
			r := o.Read(time.Duration(i)*time.Second, 60)
			for _, c := range r.DTCs {
				if c == tc.dtc {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("fault %d never produced DTC %s within 200 reads", tc.fault, tc.dtc)
		}
	}
}

func TestOBDClearFaultStopsProgression(t *testing.T) {
	o, _ := NewOBD(sim.NewRNG(3))
	o.InjectFault(FaultOverheat)
	for i := 0; i < 10; i++ {
		o.Read(time.Duration(i)*time.Second, 60)
	}
	o.ClearFault()
	before := o.Read(11*time.Second, 60).CoolantTempC
	after := o.Read(100*time.Second, 60).CoolantTempC
	if after > before+3 {
		t.Fatalf("coolant kept rising after ClearFault: %v -> %v", before, after)
	}
}

func TestOBDFuelMonotoneNonIncreasing(t *testing.T) {
	o, _ := NewOBD(sim.NewRNG(4))
	prev := o.Read(0, 120).FuelPct
	for i := 1; i < 100; i++ {
		cur := o.Read(time.Duration(i)*time.Second, 120).FuelPct
		if cur > prev {
			t.Fatalf("fuel increased: %v -> %v", prev, cur)
		}
		prev = cur
	}
}

func TestGPSFixTracksMobility(t *testing.T) {
	road, _ := geo.NewRoad(10000)
	mob := geo.Mobility{Road: road, SpeedMS: 10}
	g, err := NewGPS(mob, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	fix := g.Fix(100 * time.Second)
	if fix.X < 980 || fix.X > 1020 {
		t.Fatalf("fix.X = %v, want ~1000", fix.X)
	}
	if fix.Accuracy < 1.5 || fix.Accuracy > 5 {
		t.Fatalf("accuracy = %v out of range", fix.Accuracy)
	}
	if _, err := NewGPS(mob, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestCameraValidation(t *testing.T) {
	if _, err := NewCamera(0, 720, 30, 2, sim.NewRNG(1)); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewCamera(1280, 720, 0, 2, sim.NewRNG(1)); err == nil {
		t.Fatal("zero fps accepted")
	}
	if _, err := NewCamera(1280, 720, 30, -1, sim.NewRNG(1)); err == nil {
		t.Fatal("negative density accepted")
	}
	if _, err := NewCamera(1280, 720, 30, 2, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestCameraCapture(t *testing.T) {
	c, err := NewCamera(1280, 720, 30, 2, sim.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if c.FPS() != 30 {
		t.Fatalf("FPS = %d", c.FPS())
	}
	var totalVehicles int
	for i := 0; i < 300; i++ {
		f := c.Capture(time.Duration(i) * 33 * time.Millisecond)
		if f.Seq != i {
			t.Fatalf("seq = %d, want %d", f.Seq, i)
		}
		if f.Bytes <= 0 {
			t.Fatal("frame has no bytes")
		}
		if len(f.Plates) != f.Vehicles {
			t.Fatalf("plates %d != vehicles %d", len(f.Plates), f.Vehicles)
		}
		totalVehicles += f.Vehicles
	}
	mean := float64(totalVehicles) / 300
	if mean < 1.5 || mean > 2.5 {
		t.Fatalf("mean vehicles/frame = %v, want ~2", mean)
	}
}

func TestPlateFormat(t *testing.T) {
	c, _ := NewCamera(1280, 720, 30, 5, sim.NewRNG(7))
	f := c.Capture(0)
	for _, p := range f.Plates {
		if len(p) != 7 || p[3] != '-' {
			t.Fatalf("plate %q not in AAA-999 format", p)
		}
		if strings.ContainsAny(p[:3], "0123456789") {
			t.Fatalf("plate %q has digits in letter block", p)
		}
	}
}

func TestLiDAR(t *testing.T) {
	l, err := NewLiDAR(32, sim.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	s := l.Sweep(time.Second)
	if s.Points < 32*1800 {
		t.Fatalf("points = %d, want >= %d", s.Points, 32*1800)
	}
	if s.Bytes != s.Points*16 {
		t.Fatalf("bytes = %d, want points*16", s.Bytes)
	}
	if _, err := NewLiDAR(0, sim.NewRNG(1)); err == nil {
		t.Fatal("zero beams accepted")
	}
	if _, err := NewLiDAR(32, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if got := poisson(sim.NewRNG(1), 0); got != 0 {
		t.Fatalf("poisson(0) = %d", got)
	}
	if got := poisson(sim.NewRNG(1), -1); got != 0 {
		t.Fatalf("poisson(-1) = %d", got)
	}
}

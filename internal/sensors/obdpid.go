package sensors

import (
	"fmt"
	"strconv"
	"time"
)

// This file implements the OBD-II wire encoding the DDI's OBD reader
// speaks (paper §IV-D: "we used an OBD reader since most of the normal
// vehicles only provide an OBD interface"). Mode 01 (current data) PIDs
// use the standard SAE J1979 scalings; Mode 03 returns diagnostic trouble
// codes in their two-byte encoding.

// PID is a Mode-01 parameter identifier.
type PID byte

// Supported PIDs with standard encodings.
const (
	PIDCoolantTemp PID = 0x05 // A - 40 (°C)
	PIDRPM         PID = 0x0C // (256A + B) / 4 (rpm)
	PIDSpeed       PID = 0x0D // A (km/h)
	PIDThrottle    PID = 0x11 // A * 100 / 255 (%)
	PIDFuelLevel   PID = 0x2F // A * 100 / 255 (%)
	PIDVoltage     PID = 0x42 // (256A + B) / 1000 (V)
)

// Mode bytes.
const (
	modeCurrentData     = 0x01
	modeDTC             = 0x03
	responseOffset      = 0x40
	respCurrentData     = modeCurrentData + responseOffset
	respDTC             = modeDTC + responseOffset
	maxEncodableRPM     = 16383.75
	maxEncodableVoltage = 65.535
)

// Request builds a Mode-01 request frame for a PID.
func Request(pid PID) []byte { return []byte{modeCurrentData, byte(pid)} }

// EncodeCurrentData builds the Mode-01 response frame for a PID from a
// reading, applying the standard scaling.
func EncodeCurrentData(pid PID, r OBDReading) ([]byte, error) {
	frame := []byte{respCurrentData, byte(pid)}
	switch pid {
	case PIDCoolantTemp:
		v := clamp(r.CoolantTempC, -40, 215)
		return append(frame, byte(v+40)), nil
	case PIDRPM:
		v := clamp(r.RPM, 0, maxEncodableRPM)
		raw := uint16(v * 4)
		return append(frame, byte(raw>>8), byte(raw)), nil
	case PIDSpeed:
		return append(frame, byte(clamp(r.SpeedKPH, 0, 255))), nil
	case PIDThrottle:
		return append(frame, byte(clamp(r.ThrottlePct, 0, 100)*255/100)), nil
	case PIDFuelLevel:
		return append(frame, byte(clamp(r.FuelPct, 0, 100)*255/100)), nil
	case PIDVoltage:
		raw := uint16(clamp(r.BatteryV, 0, maxEncodableVoltage) * 1000)
		return append(frame, byte(raw>>8), byte(raw)), nil
	default:
		return nil, fmt.Errorf("sensors: unsupported PID 0x%02X", byte(pid))
	}
}

// DecodeCurrentData parses a Mode-01 response frame into (pid, value).
func DecodeCurrentData(frame []byte) (PID, float64, error) {
	if len(frame) < 3 {
		return 0, 0, fmt.Errorf("sensors: frame too short (%d bytes)", len(frame))
	}
	if frame[0] != respCurrentData {
		return 0, 0, fmt.Errorf("sensors: not a mode-01 response (0x%02X)", frame[0])
	}
	pid := PID(frame[1])
	data := frame[2:]
	need := func(n int) error {
		if len(data) < n {
			return fmt.Errorf("sensors: PID 0x%02X needs %d data bytes, got %d", byte(pid), n, len(data))
		}
		return nil
	}
	switch pid {
	case PIDCoolantTemp:
		if err := need(1); err != nil {
			return 0, 0, err
		}
		return pid, float64(data[0]) - 40, nil
	case PIDRPM:
		if err := need(2); err != nil {
			return 0, 0, err
		}
		return pid, float64(uint16(data[0])<<8|uint16(data[1])) / 4, nil
	case PIDSpeed:
		if err := need(1); err != nil {
			return 0, 0, err
		}
		return pid, float64(data[0]), nil
	case PIDThrottle, PIDFuelLevel:
		if err := need(1); err != nil {
			return 0, 0, err
		}
		return pid, float64(data[0]) * 100 / 255, nil
	case PIDVoltage:
		if err := need(2); err != nil {
			return 0, 0, err
		}
		return pid, float64(uint16(data[0])<<8|uint16(data[1])) / 1000, nil
	default:
		return 0, 0, fmt.Errorf("sensors: unsupported PID 0x%02X", byte(pid))
	}
}

// dtcSystems maps the top two bits of a DTC to its system letter.
var dtcSystems = [4]byte{'P', 'C', 'B', 'U'}

// EncodeDTC packs a five-character trouble code ("P0217") into its
// two-byte wire form.
func EncodeDTC(code string) ([2]byte, error) {
	var out [2]byte
	if len(code) != 5 {
		return out, fmt.Errorf("sensors: DTC %q must be 5 characters", code)
	}
	var system byte
	switch code[0] {
	case 'P':
		system = 0
	case 'C':
		system = 1
	case 'B':
		system = 2
	case 'U':
		system = 3
	default:
		return out, fmt.Errorf("sensors: DTC %q has unknown system %q", code, code[0])
	}
	d1, err := strconv.ParseUint(code[1:2], 4, 8) // second char is 0-3
	if err != nil {
		return out, fmt.Errorf("sensors: DTC %q second digit must be 0-3", code)
	}
	rest, err := strconv.ParseUint(code[2:], 16, 16)
	if err != nil {
		return out, fmt.Errorf("sensors: DTC %q digits 3-5 must be hex", code)
	}
	out[0] = system<<6 | byte(d1)<<4 | byte(rest>>8)
	out[1] = byte(rest)
	return out, nil
}

// DecodeDTC unpacks a two-byte trouble code.
func DecodeDTC(b [2]byte) string {
	system := dtcSystems[b[0]>>6]
	return fmt.Sprintf("%c%d%03X", system, (b[0]>>4)&0x3, uint16(b[0]&0x0F)<<8|uint16(b[1]))
}

// EncodeDTCFrame builds a Mode-03 response carrying all codes.
func EncodeDTCFrame(codes []string) ([]byte, error) {
	if len(codes) > 255 {
		return nil, fmt.Errorf("sensors: %d DTCs exceed a single frame", len(codes))
	}
	frame := []byte{respDTC, byte(len(codes))}
	for _, c := range codes {
		enc, err := EncodeDTC(c)
		if err != nil {
			return nil, err
		}
		frame = append(frame, enc[0], enc[1])
	}
	return frame, nil
}

// DecodeDTCFrame parses a Mode-03 response.
func DecodeDTCFrame(frame []byte) ([]string, error) {
	if len(frame) < 2 {
		return nil, fmt.Errorf("sensors: DTC frame too short")
	}
	if frame[0] != respDTC {
		return nil, fmt.Errorf("sensors: not a mode-03 response (0x%02X)", frame[0])
	}
	n := int(frame[1])
	if len(frame) != 2+2*n {
		return nil, fmt.Errorf("sensors: DTC frame claims %d codes but has %d bytes", n, len(frame)-2)
	}
	codes := make([]string, 0, n)
	for i := 0; i < n; i++ {
		codes = append(codes, DecodeDTC([2]byte{frame[2+2*i], frame[3+2*i]}))
	}
	return codes, nil
}

// ReadFrames samples the bus and returns the standard frame set: one
// Mode-01 response per supported PID plus a Mode-03 DTC frame — what the
// DDI's OBD reader actually receives each poll.
func (o *OBD) ReadFrames(t time.Duration, speedKPH float64) ([][]byte, error) {
	r := o.Read(t, speedKPH)
	pids := []PID{PIDCoolantTemp, PIDRPM, PIDSpeed, PIDThrottle, PIDFuelLevel, PIDVoltage}
	frames := make([][]byte, 0, len(pids)+1)
	for _, pid := range pids {
		f, err := EncodeCurrentData(pid, r)
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	dtc, err := EncodeDTCFrame(r.DTCs)
	if err != nil {
		return nil, err
	}
	return append(frames, dtc), nil
}

package sensors

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestRequestFrame(t *testing.T) {
	f := Request(PIDRPM)
	if len(f) != 2 || f[0] != 0x01 || f[1] != 0x0C {
		t.Fatalf("request = %v", f)
	}
}

func TestPIDRoundTrips(t *testing.T) {
	r := OBDReading{
		SpeedKPH:     88,
		RPM:          3200,
		CoolantTempC: 92,
		BatteryV:     13.8,
		FuelPct:      75,
		ThrottlePct:  42,
	}
	cases := []struct {
		pid  PID
		want float64
		tol  float64
	}{
		{PIDSpeed, 88, 1},
		{PIDRPM, 3200, 0.25},
		{PIDCoolantTemp, 92, 1},
		{PIDVoltage, 13.8, 0.001},
		{PIDFuelLevel, 75, 0.5},
		{PIDThrottle, 42, 0.5},
	}
	for _, tc := range cases {
		frame, err := EncodeCurrentData(tc.pid, r)
		if err != nil {
			t.Fatalf("encode 0x%02X: %v", byte(tc.pid), err)
		}
		pid, got, err := DecodeCurrentData(frame)
		if err != nil {
			t.Fatalf("decode 0x%02X: %v", byte(tc.pid), err)
		}
		if pid != tc.pid {
			t.Fatalf("pid = 0x%02X", byte(pid))
		}
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("PID 0x%02X round trip = %v, want %v ± %v", byte(tc.pid), got, tc.want, tc.tol)
		}
	}
}

func TestPIDRangeClamps(t *testing.T) {
	r := OBDReading{SpeedKPH: 400, RPM: 99999, CoolantTempC: 500, BatteryV: 99}
	frame, _ := EncodeCurrentData(PIDSpeed, r)
	if _, v, _ := DecodeCurrentData(frame); v != 255 {
		t.Fatalf("speed clamp = %v", v)
	}
	frame, _ = EncodeCurrentData(PIDRPM, r)
	if _, v, _ := DecodeCurrentData(frame); v > 16384 {
		t.Fatalf("rpm clamp = %v", v)
	}
}

func TestPIDErrors(t *testing.T) {
	if _, err := EncodeCurrentData(PID(0xEE), OBDReading{}); err == nil {
		t.Fatal("unknown PID encoded")
	}
	if _, _, err := DecodeCurrentData(nil); err == nil {
		t.Fatal("nil frame decoded")
	}
	if _, _, err := DecodeCurrentData([]byte{0x99, 0x0C, 0, 0}); err == nil {
		t.Fatal("wrong mode decoded")
	}
	if _, _, err := DecodeCurrentData([]byte{0x41, 0x0C, 0x01}); err == nil {
		t.Fatal("truncated RPM decoded")
	}
	if _, _, err := DecodeCurrentData([]byte{0x41, 0xEE, 0x01}); err == nil {
		t.Fatal("unknown PID decoded")
	}
}

func TestDTCRoundTrip(t *testing.T) {
	for _, code := range []string{"P0217", "C0750", "P0562", "P0300", "U3FFF", "B1234"} {
		enc, err := EncodeDTC(code)
		if err != nil {
			t.Fatalf("encode %s: %v", code, err)
		}
		if got := DecodeDTC(enc); got != code {
			t.Errorf("round trip %s -> %s", code, got)
		}
	}
}

func TestDTCRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(b0, b1 byte) bool {
		code := DecodeDTC([2]byte{b0, b1})
		enc, err := EncodeDTC(code)
		if err != nil {
			return false
		}
		return enc == [2]byte{b0, b1}
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDTCEncodingErrors(t *testing.T) {
	for _, bad := range []string{"", "P021", "X0217", "P4217", "P0ZZZ", "P02177"} {
		if _, err := EncodeDTC(bad); err == nil {
			t.Errorf("EncodeDTC(%q) succeeded", bad)
		}
	}
}

func TestDTCFrameRoundTrip(t *testing.T) {
	codes := []string{"P0217", "P0300"}
	frame, err := EncodeDTCFrame(codes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDTCFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "P0217" || got[1] != "P0300" {
		t.Fatalf("round trip = %v", got)
	}
	// Empty frame is valid (healthy vehicle).
	empty, err := EncodeDTCFrame(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeDTCFrame(empty); err != nil || len(got) != 0 {
		t.Fatalf("empty frame = %v, %v", got, err)
	}
}

func TestDTCFrameErrors(t *testing.T) {
	if _, err := DecodeDTCFrame(nil); err == nil {
		t.Fatal("nil frame decoded")
	}
	if _, err := DecodeDTCFrame([]byte{0x99, 0}); err == nil {
		t.Fatal("wrong mode decoded")
	}
	if _, err := DecodeDTCFrame([]byte{0x43, 2, 0x01, 0x02}); err == nil {
		t.Fatal("length mismatch decoded")
	}
	if _, err := EncodeDTCFrame([]string{"bogus"}); err == nil {
		t.Fatal("bad code encoded")
	}
}

// TestReadFramesEndToEnd: a faulty vehicle's wire frames decode back into
// the injected trouble code.
func TestReadFramesEndToEnd(t *testing.T) {
	o, err := NewOBD(sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	o.InjectFault(FaultOverheat)
	var sawDTC bool
	for i := 0; i < 100 && !sawDTC; i++ {
		frames, err := o.ReadFrames(time.Duration(i)*time.Second, 60)
		if err != nil {
			t.Fatal(err)
		}
		if len(frames) != 7 { // 6 PIDs + DTC frame
			t.Fatalf("frames = %d", len(frames))
		}
		// Every PID frame decodes.
		for _, f := range frames[:6] {
			if _, _, err := DecodeCurrentData(f); err != nil {
				t.Fatal(err)
			}
		}
		codes, err := DecodeDTCFrame(frames[6])
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range codes {
			if c == DTCOverheat {
				sawDTC = true
			}
		}
	}
	if !sawDTC {
		t.Fatal("overheat DTC never crossed the wire")
	}
}

// Package sensors generates the synthetic on-board data sources OpenVDAP
// consumes: OBD-II readings (with diagnostic trouble codes), GPS traces,
// camera frames, and LiDAR sweeps. The generators are deterministic given a
// seed, and their statistical behavior (drift, noise, fault injection) is
// controllable so tests and experiments can provoke specific conditions.
package sensors

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

// OBDReading is one sample of the standard powertrain PIDs the paper's DDI
// collects (engine RPM, speed, coolant temperature, tire pressure, battery).
type OBDReading struct {
	At           time.Duration `json:"at"`
	SpeedKPH     float64       `json:"speedKph"`
	RPM          float64       `json:"rpm"`
	CoolantTempC float64       `json:"coolantTempC"`
	TirePressure [4]float64    `json:"tirePressureKPa"`
	BatteryV     float64       `json:"batteryVolts"`
	FuelPct      float64       `json:"fuelPct"`
	ThrottlePct  float64       `json:"throttlePct"`
	AccelMS2     float64       `json:"accelMs2"`
	DTCs         []string      `json:"dtcs,omitempty"`
}

// FaultKind selects a failure mode for injection.
type FaultKind int

const (
	// FaultNone injects nothing.
	FaultNone FaultKind = iota
	// FaultOverheat drives coolant temperature upward until a DTC fires.
	FaultOverheat
	// FaultTireLeak bleeds pressure from tire 2.
	FaultTireLeak
	// FaultBatteryDrain sags battery voltage.
	FaultBatteryDrain
	// FaultMisfire raises RPM variance and emits P0300 codes.
	FaultMisfire
)

// DTC codes emitted by the fault models (standard OBD-II trouble codes).
const (
	DTCOverheat = "P0217" // engine over-temperature
	DTCTire     = "C0750" // tire pressure sensor/low
	DTCBattery  = "P0562" // system voltage low
	DTCMisfire  = "P0300" // random/multiple cylinder misfire
)

// OBD simulates the on-board diagnostics bus.
type OBD struct {
	rng   *sim.RNG
	fault FaultKind
	// fault progression state
	coolant float64
	tire2   float64
	battery float64
	fuel    float64
}

// NewOBD returns a healthy-vehicle OBD source.
func NewOBD(rng *sim.RNG) (*OBD, error) {
	if rng == nil {
		return nil, fmt.Errorf("sensors: nil RNG")
	}
	return &OBD{rng: rng, coolant: 90, tire2: 230, battery: 13.8, fuel: 87}, nil
}

// InjectFault switches the generator into the given failure mode; the
// affected signal degrades progressively on subsequent reads.
func (o *OBD) InjectFault(k FaultKind) { o.fault = k }

// ClearFault restores healthy behavior (does not undo accumulated damage).
func (o *OBD) ClearFault() { o.fault = FaultNone }

// Read samples the bus at virtual time t for a vehicle moving at speedKPH.
func (o *OBD) Read(t time.Duration, speedKPH float64) OBDReading {
	rpmBase := 700 + speedKPH*30
	r := OBDReading{
		At:           t,
		SpeedKPH:     speedKPH + o.rng.Normal(0, 0.4),
		RPM:          rpmBase + o.rng.Normal(0, 25),
		CoolantTempC: o.coolant + o.rng.Normal(0, 0.5),
		BatteryV:     o.battery + o.rng.Normal(0, 0.05),
		FuelPct:      o.fuel,
		ThrottlePct:  clamp(speedKPH/1.6+o.rng.Normal(0, 2), 0, 100),
		AccelMS2:     o.rng.Normal(0, 0.3),
	}
	r.TirePressure = [4]float64{
		230 + o.rng.Normal(0, 1),
		230 + o.rng.Normal(0, 1),
		o.tire2 + o.rng.Normal(0, 1),
		230 + o.rng.Normal(0, 1),
	}
	o.fuel = clamp(o.fuel-0.0004*speedKPH/100, 0, 100)
	switch o.fault {
	case FaultOverheat:
		o.coolant += 0.6
		if r.CoolantTempC > 110 {
			r.DTCs = append(r.DTCs, DTCOverheat)
		}
	case FaultTireLeak:
		o.tire2 -= 0.8
		if r.TirePressure[2] < 180 {
			r.DTCs = append(r.DTCs, DTCTire)
		}
	case FaultBatteryDrain:
		o.battery -= 0.02
		if r.BatteryV < 11.5 {
			r.DTCs = append(r.DTCs, DTCBattery)
		}
	case FaultMisfire:
		r.RPM += o.rng.Normal(0, 350)
		if o.rng.Bernoulli(0.4) {
			r.DTCs = append(r.DTCs, DTCMisfire)
		}
	}
	return r
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// GPSFix is one position sample.
type GPSFix struct {
	At       time.Duration `json:"at"`
	X        float64       `json:"x"` // meters along road
	Y        float64       `json:"y"`
	SpeedMS  float64       `json:"speedMs"`
	Heading  float64       `json:"headingDeg"`
	Accuracy float64       `json:"accuracyM"`
}

// GPS samples a vehicle's mobility with realistic position noise.
type GPS struct {
	mob geo.Mobility
	rng *sim.RNG
}

// NewGPS builds a GPS bound to a mobility trace.
func NewGPS(mob geo.Mobility, rng *sim.RNG) (*GPS, error) {
	if rng == nil {
		return nil, fmt.Errorf("sensors: nil RNG")
	}
	return &GPS{mob: mob, rng: rng}, nil
}

// Fix returns a position sample at virtual time t.
func (g *GPS) Fix(t time.Duration) GPSFix {
	p := g.mob.PositionAt(t)
	acc := g.rng.Uniform(1.5, 5)
	return GPSFix{
		At:       t,
		X:        p.X + g.rng.Normal(0, acc/2),
		Y:        p.Y + g.rng.Normal(0, acc/2),
		SpeedMS:  g.mob.SpeedMS + g.rng.Normal(0, 0.2),
		Heading:  90,
		Accuracy: acc,
	}
}

// CameraFrame is one dash-camera capture: the platform cares about its
// size and timing, plus a coarse scene description the detection workloads
// consume (number of vehicles/pedestrians actually present, so detector
// accuracy can be scored).
type CameraFrame struct {
	At          time.Duration `json:"at"`
	Seq         int           `json:"seq"`
	Width       int           `json:"width"`
	Height      int           `json:"height"`
	Bytes       int           `json:"bytes"`
	Vehicles    int           `json:"vehicles"`
	Pedestrians int           `json:"pedestrians"`
	Plates      []string      `json:"plates,omitempty"`
}

// Camera produces frames with Poisson-ish scene contents.
type Camera struct {
	rng     *sim.RNG
	width   int
	height  int
	fps     int
	seq     int
	density float64 // mean vehicles per frame
}

// NewCamera returns a dash camera. Density is the mean number of vehicles
// visible per frame.
func NewCamera(width, height, fps int, density float64, rng *sim.RNG) (*Camera, error) {
	if rng == nil {
		return nil, fmt.Errorf("sensors: nil RNG")
	}
	if width <= 0 || height <= 0 || fps <= 0 {
		return nil, fmt.Errorf("sensors: camera dimensions and fps must be positive")
	}
	if density < 0 {
		return nil, fmt.Errorf("sensors: negative scene density %v", density)
	}
	return &Camera{rng: rng, width: width, height: height, fps: fps, density: density}, nil
}

// FPS returns the camera frame rate.
func (c *Camera) FPS() int { return c.fps }

// Capture produces the next frame at virtual time t.
func (c *Camera) Capture(t time.Duration) CameraFrame {
	nVehicles := poisson(c.rng, c.density)
	nPed := poisson(c.rng, c.density/3)
	f := CameraFrame{
		At:          t,
		Seq:         c.seq,
		Width:       c.width,
		Height:      c.height,
		Bytes:       int(float64(c.width*c.height) * 1.5 / 10), // ~JPEG 10:1 over YUV420
		Vehicles:    nVehicles,
		Pedestrians: nPed,
	}
	for i := 0; i < nVehicles; i++ {
		f.Plates = append(f.Plates, randomPlate(c.rng))
	}
	c.seq++
	return f
}

func poisson(rng *sim.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's method; scene densities are small so this terminates fast.
	threshold := math.Exp(-mean)
	product := 1.0
	for i := 0; ; i++ {
		product *= rng.Float64()
		if product < threshold || i > 100 {
			return i
		}
	}
}

func randomPlate(rng *sim.RNG) string {
	letters := "ABCDEFGHJKLMNPRSTUVWXYZ"
	b := make([]byte, 7)
	for i := 0; i < 3; i++ {
		b[i] = letters[rng.Intn(len(letters))]
	}
	b[3] = '-'
	for i := 4; i < 7; i++ {
		b[i] = byte('0' + rng.Intn(10))
	}
	return string(b)
}

// LiDARSweep is one rotation's point cloud (size-only model).
type LiDARSweep struct {
	At     time.Duration `json:"at"`
	Points int           `json:"points"`
	Bytes  int           `json:"bytes"`
}

// LiDAR produces sweeps at a fixed rotation rate.
type LiDAR struct {
	rng       *sim.RNG
	beams     int
	pointsPer int
}

// NewLiDAR returns a spinning lidar with the given beam count.
func NewLiDAR(beams int, rng *sim.RNG) (*LiDAR, error) {
	if rng == nil {
		return nil, fmt.Errorf("sensors: nil RNG")
	}
	if beams <= 0 {
		return nil, fmt.Errorf("sensors: beams must be positive, got %d", beams)
	}
	return &LiDAR{rng: rng, beams: beams, pointsPer: beams * 1800}, nil
}

// Sweep returns one rotation's point cloud at virtual time t.
func (l *LiDAR) Sweep(t time.Duration) LiDARSweep {
	pts := l.pointsPer + l.rng.Intn(l.pointsPer/10+1)
	return LiDARSweep{At: t, Points: pts, Bytes: pts * 16} // xyz+intensity float32
}

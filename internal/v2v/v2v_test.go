package v2v

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func pseudo(c byte) string { return strings.Repeat(string(c), 32) }

func testBSM() BSM {
	return BSM{
		Pseudonym:  pseudo('a'),
		At:         3 * time.Second,
		X:          1234.5,
		Y:          -6.25,
		SpeedMS:    15.6464,
		HeadingDeg: 90,
	}
}

func TestBSMRoundTrip(t *testing.T) {
	b := testBSM()
	wire, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != bsmSize {
		t.Fatalf("wire size = %d, want %d", len(wire), bsmSize)
	}
	got, err := DecodeBSM(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("round trip: %+v != %+v", got, b)
	}
}

func TestBSMEncodeValidation(t *testing.T) {
	b := testBSM()
	b.Pseudonym = "short"
	if _, err := b.Encode(); err == nil {
		t.Fatal("short pseudonym encoded")
	}
	b = testBSM()
	b.At = -time.Second
	if _, err := b.Encode(); err == nil {
		t.Fatal("negative time encoded")
	}
}

func TestBSMDecodeErrors(t *testing.T) {
	if _, err := DecodeBSM(nil); err == nil {
		t.Fatal("nil decoded")
	}
	wire, _ := testBSM().Encode()
	if _, err := DecodeBSM(wire[:10]); err == nil {
		t.Fatal("short frame decoded")
	}
	bad := append([]byte(nil), wire...)
	bad[0] = 0
	if _, err := DecodeBSM(bad); err == nil {
		t.Fatal("bad magic decoded")
	}
	// NaN injection must be rejected.
	nanB := testBSM()
	nanB.X = math.NaN()
	nanWire, err := nanB.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBSM(nanWire); err == nil {
		t.Fatal("NaN field decoded")
	}
}

func TestBSMRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(x, y, speed, heading float64, atMS uint32) bool {
		for _, v := range []float64{x, y, speed, heading} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		b := BSM{
			Pseudonym: pseudo('z'),
			At:        time.Duration(atMS) * time.Millisecond,
			X:         x, Y: y, SpeedMS: speed, HeadingDeg: heading,
		}
		wire, err := b.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeBSM(wire)
		return err == nil && got == b
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func newTable(t *testing.T) *NeighborTable {
	t.Helper()
	nt, err := NewNeighborTable(2*time.Second, 300)
	if err != nil {
		t.Fatal(err)
	}
	return nt
}

func TestNewNeighborTableValidation(t *testing.T) {
	if _, err := NewNeighborTable(0, 300); err == nil {
		t.Fatal("zero TTL accepted")
	}
	if _, err := NewNeighborTable(time.Second, 0); err == nil {
		t.Fatal("zero range accepted")
	}
}

func TestObserveAdmitsInRange(t *testing.T) {
	nt := newTable(t)
	b := testBSM()
	b.X, b.Y = 100, 0
	if !nt.Observe(b, time.Second, 0, 0) {
		t.Fatal("in-range beacon rejected")
	}
	far := testBSM()
	far.Pseudonym = pseudo('b')
	far.X = 5000
	if nt.Observe(far, time.Second, 0, 0) {
		t.Fatal("out-of-range beacon admitted")
	}
	if nt.Len() != 1 {
		t.Fatalf("Len = %d", nt.Len())
	}
}

func TestObserveRejectsStaleOutOfOrder(t *testing.T) {
	nt := newTable(t)
	fresh := testBSM()
	fresh.At = 5 * time.Second
	fresh.X = 10
	if !nt.Observe(fresh, 5*time.Second, 0, 0) {
		t.Fatal("fresh beacon rejected")
	}
	stale := fresh
	stale.At = 3 * time.Second
	stale.X = 999 // would corrupt position if admitted
	if nt.Observe(stale, 6*time.Second, 0, 0) {
		t.Fatal("out-of-order beacon admitted")
	}
	ns := nt.Neighbors(6*time.Second, 0, 0)
	if len(ns) != 1 || ns[0].X != 10 {
		t.Fatalf("neighbors = %+v", ns)
	}
}

func TestNeighborExpiry(t *testing.T) {
	nt := newTable(t)
	b := testBSM()
	b.X = 10
	nt.Observe(b, time.Second, 0, 0)
	if len(nt.Neighbors(2*time.Second, 0, 0)) != 1 {
		t.Fatal("live neighbor missing")
	}
	if len(nt.Neighbors(10*time.Second, 0, 0)) != 0 {
		t.Fatal("silent neighbor still listed")
	}
	if removed := nt.Sweep(10 * time.Second); removed != 1 {
		t.Fatalf("swept %d", removed)
	}
	if nt.Len() != 0 {
		t.Fatal("entry survived sweep")
	}
}

func TestNeighborsSortedByDistance(t *testing.T) {
	nt := newTable(t)
	for i, x := range []float64{250, 50, 150} {
		b := testBSM()
		b.Pseudonym = pseudo(byte('a' + i))
		b.X = x
		if !nt.Observe(b, time.Second, 0, 0) {
			t.Fatalf("beacon %d rejected", i)
		}
	}
	ns := nt.Neighbors(time.Second, 0, 0)
	if len(ns) != 3 {
		t.Fatalf("neighbors = %d", len(ns))
	}
	if ns[0].X != 50 || ns[1].X != 150 || ns[2].X != 250 {
		t.Fatalf("not sorted by distance: %v %v %v", ns[0].X, ns[1].X, ns[2].X)
	}
}

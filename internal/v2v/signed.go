package v2v

import (
	"encoding/binary"
	"fmt"

	"repro/internal/vdapcrypto"
)

// SignedBSM wraps a beacon with an IEEE-1609.2-style ECDSA signature and
// the sender's per-epoch public key: receivers verify before admitting the
// beacon to their neighbor table, so position spoofing requires a key, and
// rotating the key with the pseudonym keeps epochs unlinkable.
type SignedBSM struct {
	Payload []byte // encoded BSM
	PubKey  []byte // compressed P-256 point
	Sig     []byte // ASN.1 ECDSA signature over Payload
}

// SignBSM encodes and signs a beacon.
func SignBSM(b BSM, signer *vdapcrypto.Signer) (SignedBSM, error) {
	if signer == nil {
		return SignedBSM{}, fmt.Errorf("v2v: nil signer")
	}
	payload, err := b.Encode()
	if err != nil {
		return SignedBSM{}, err
	}
	sig, err := signer.Sign(payload)
	if err != nil {
		return SignedBSM{}, err
	}
	return SignedBSM{Payload: payload, PubKey: signer.PublicKey(), Sig: sig}, nil
}

// VerifyAndDecode checks the signature and returns the beacon. Tampered
// payloads, wrong keys, and malformed frames are all rejected.
func (s SignedBSM) VerifyAndDecode() (BSM, error) {
	if !vdapcrypto.VerifySignature(s.PubKey, s.Payload, s.Sig) {
		return BSM{}, fmt.Errorf("v2v: signature verification failed")
	}
	return DecodeBSM(s.Payload)
}

// Encode serializes the signed frame: len-prefixed payload, key, sig.
func (s SignedBSM) Encode() ([]byte, error) {
	if len(s.Payload) == 0 || len(s.PubKey) == 0 || len(s.Sig) == 0 {
		return nil, fmt.Errorf("v2v: incomplete signed frame")
	}
	total := 3*2 + len(s.Payload) + len(s.PubKey) + len(s.Sig)
	out := make([]byte, 0, total)
	for _, part := range [][]byte{s.Payload, s.PubKey, s.Sig} {
		if len(part) > 0xFFFF {
			return nil, fmt.Errorf("v2v: frame part too large (%d bytes)", len(part))
		}
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(part)))
		out = append(out, l[:]...)
		out = append(out, part...)
	}
	return out, nil
}

// DecodeSignedBSM parses the wire form of a signed frame (it does not
// verify; call VerifyAndDecode on the result).
func DecodeSignedBSM(data []byte) (SignedBSM, error) {
	var parts [3][]byte
	off := 0
	for i := range parts {
		if off+2 > len(data) {
			return SignedBSM{}, fmt.Errorf("v2v: truncated signed frame")
		}
		l := int(binary.LittleEndian.Uint16(data[off : off+2]))
		off += 2
		if off+l > len(data) {
			return SignedBSM{}, fmt.Errorf("v2v: truncated signed frame part %d", i)
		}
		parts[i] = data[off : off+l]
		off += l
	}
	if off != len(data) {
		return SignedBSM{}, fmt.Errorf("v2v: %d trailing bytes in signed frame", len(data)-off)
	}
	return SignedBSM{Payload: parts[0], PubKey: parts[1], Sig: parts[2]}, nil
}

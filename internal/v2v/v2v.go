// Package v2v implements the vehicle-to-vehicle beaconing layer under
// OpenVDAP's collaboration features: DSRC basic safety messages (BSMs)
// carrying pseudonymous position/speed beacons in a compact binary wire
// format, and a neighbor table that ages entries out — how a vehicle
// discovers which peers are in convoy range before sharing results or
// accepting migrations.
package v2v

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"
)

// BSM is one basic safety message.
type BSM struct {
	// Pseudonym identifies the sender unlinkably (16 bytes hex = 32 chars).
	Pseudonym string
	// At is the send time.
	At time.Duration
	// X, Y position in meters; SpeedMS and HeadingDeg motion state.
	X, Y       float64
	SpeedMS    float64
	HeadingDeg float64
}

// wire format: magic(2) | pseudonym(32) | atNanos(8) | x(8) | y(8) |
// speed(8) | heading(8) — 74 bytes total.
const (
	bsmMagic0 = 0xB5
	bsmMagic1 = 0x4D
	bsmSize   = 2 + 32 + 8 + 8 + 8 + 8 + 8
)

// Encode serializes the message.
func (b BSM) Encode() ([]byte, error) {
	if len(b.Pseudonym) != 32 {
		return nil, fmt.Errorf("v2v: pseudonym must be 32 chars, got %d", len(b.Pseudonym))
	}
	if b.At < 0 {
		return nil, fmt.Errorf("v2v: negative timestamp")
	}
	out := make([]byte, 0, bsmSize)
	out = append(out, bsmMagic0, bsmMagic1)
	out = append(out, b.Pseudonym...)
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		out = append(out, buf[:]...)
	}
	put(uint64(b.At))
	put(math.Float64bits(b.X))
	put(math.Float64bits(b.Y))
	put(math.Float64bits(b.SpeedMS))
	put(math.Float64bits(b.HeadingDeg))
	return out, nil
}

// DecodeBSM parses a wire message.
func DecodeBSM(data []byte) (BSM, error) {
	if len(data) != bsmSize {
		return BSM{}, fmt.Errorf("v2v: BSM must be %d bytes, got %d", bsmSize, len(data))
	}
	if data[0] != bsmMagic0 || data[1] != bsmMagic1 {
		return BSM{}, fmt.Errorf("v2v: bad magic 0x%02X%02X", data[0], data[1])
	}
	b := BSM{Pseudonym: string(data[2:34])}
	get := func(off int) uint64 { return binary.LittleEndian.Uint64(data[off : off+8]) }
	b.At = time.Duration(get(34))
	if b.At < 0 {
		return BSM{}, fmt.Errorf("v2v: negative timestamp")
	}
	b.X = math.Float64frombits(get(42))
	b.Y = math.Float64frombits(get(50))
	b.SpeedMS = math.Float64frombits(get(58))
	b.HeadingDeg = math.Float64frombits(get(66))
	for _, v := range []float64{b.X, b.Y, b.SpeedMS, b.HeadingDeg} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return BSM{}, fmt.Errorf("v2v: non-finite field")
		}
	}
	return b, nil
}

// Neighbor is one table entry.
type Neighbor struct {
	BSM
	// LastSeen is when the latest beacon arrived.
	LastSeen time.Duration
}

// NeighborTable tracks peers from their beacons, aging silent ones out.
type NeighborTable struct {
	ttl     time.Duration
	rangeM  float64
	entries map[string]Neighbor
}

// NewNeighborTable builds a table. ttl is the silence timeout; rangeM the
// admission radius (beacons from farther away are ignored — DSRC would
// not have delivered them).
func NewNeighborTable(ttl time.Duration, rangeM float64) (*NeighborTable, error) {
	if ttl <= 0 {
		return nil, fmt.Errorf("v2v: TTL must be positive, got %v", ttl)
	}
	if rangeM <= 0 {
		return nil, fmt.Errorf("v2v: range must be positive, got %v", rangeM)
	}
	return &NeighborTable{ttl: ttl, rangeM: rangeM, entries: make(map[string]Neighbor)}, nil
}

// Observe ingests a beacon heard at virtual time now by a vehicle at
// (selfX, selfY). It reports whether the beacon was admitted.
func (nt *NeighborTable) Observe(b BSM, now time.Duration, selfX, selfY float64) bool {
	dx, dy := b.X-selfX, b.Y-selfY
	if math.Hypot(dx, dy) > nt.rangeM {
		return false
	}
	cur, ok := nt.entries[b.Pseudonym]
	if ok && cur.At > b.At {
		return false // stale out-of-order beacon
	}
	nt.entries[b.Pseudonym] = Neighbor{BSM: b, LastSeen: now}
	return true
}

// Sweep drops entries silent for longer than the TTL and returns how many
// were removed.
func (nt *NeighborTable) Sweep(now time.Duration) int {
	removed := 0
	for p, n := range nt.entries {
		if now-n.LastSeen > nt.ttl {
			delete(nt.entries, p)
			removed++
		}
	}
	return removed
}

// Neighbors returns live entries at virtual time now, nearest first
// relative to (selfX, selfY).
func (nt *NeighborTable) Neighbors(now time.Duration, selfX, selfY float64) []Neighbor {
	var out []Neighbor
	for _, n := range nt.entries {
		if now-n.LastSeen > nt.ttl {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		di := math.Hypot(out[i].X-selfX, out[i].Y-selfY)
		dj := math.Hypot(out[j].X-selfX, out[j].Y-selfY)
		if di != dj {
			return di < dj
		}
		return out[i].Pseudonym < out[j].Pseudonym
	})
	return out
}

// Len returns the raw entry count (including not-yet-swept stale ones).
func (nt *NeighborTable) Len() int { return len(nt.entries) }

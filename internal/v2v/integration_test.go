package v2v

import (
	"testing"
	"time"

	"repro/internal/edgeos"
)

// TestBeaconPseudonymRotationUnlinkable: a vehicle beaconing across a
// pseudonym rotation appears as two distinct neighbors to an observer —
// the unlinkability the Privacy module provides — while the sender itself
// can still recognize both identities as its own.
func TestBeaconPseudonymRotationUnlinkable(t *testing.T) {
	sender, err := edgeos.NewPrivacyModule([]byte("sender-long-term-secret-material"), 10*time.Minute, 100)
	if err != nil {
		t.Fatal(err)
	}
	observer, err := NewNeighborTable(time.Hour, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	send := func(at time.Duration, x float64) {
		b := BSM{Pseudonym: sender.Pseudonym(at), At: at, X: x, SpeedMS: 15}
		wire, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBSM(wire)
		if err != nil {
			t.Fatal(err)
		}
		if !observer.Observe(got, at, 0, 0) {
			t.Fatalf("beacon at %v rejected", at)
		}
	}
	send(time.Minute, 100)    // epoch 0
	send(5*time.Minute, 200)  // epoch 0, same pseudonym
	send(15*time.Minute, 300) // epoch 1, rotated pseudonym

	ns := observer.Neighbors(15*time.Minute, 0, 0)
	if len(ns) != 2 {
		t.Fatalf("observer sees %d neighbors, want 2 (rotation looks like a new vehicle)", len(ns))
	}
	// The sender recognizes both identities as its own.
	for _, n := range ns {
		if !sender.IsMine(n.Pseudonym, 15*time.Minute, time.Hour) {
			t.Fatalf("sender disowned pseudonym %s", n.Pseudonym)
		}
	}
}

package v2v

import (
	"testing"

	"repro/internal/vdapcrypto"
)

func TestSignedBSMRoundTrip(t *testing.T) {
	signer, err := vdapcrypto.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	b := testBSM()
	signed, err := SignBSM(b, signer)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := signed.Encode()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := DecodeSignedBSM(wire)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parsed.VerifyAndDecode()
	if err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestSignedBSMRejectsTampering(t *testing.T) {
	signer, _ := vdapcrypto.NewSigner()
	signed, err := SignBSM(testBSM(), signer)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the position bytes inside the payload.
	tampered := signed
	tampered.Payload = append([]byte(nil), signed.Payload...)
	tampered.Payload[42] ^= 0xFF
	if _, err := tampered.VerifyAndDecode(); err == nil {
		t.Fatal("tampered beacon verified")
	}
	// Swap in a different key.
	other, _ := vdapcrypto.NewSigner()
	wrongKey := signed
	wrongKey.PubKey = other.PublicKey()
	if _, err := wrongKey.VerifyAndDecode(); err == nil {
		t.Fatal("wrong-key beacon verified")
	}
	// Corrupt the signature.
	badSig := signed
	badSig.Sig = append([]byte(nil), signed.Sig...)
	badSig.Sig[4] ^= 0xFF
	if _, err := badSig.VerifyAndDecode(); err == nil {
		t.Fatal("bad-signature beacon verified")
	}
	// Garbage public key bytes.
	garbage := signed
	garbage.PubKey = []byte{1, 2, 3}
	if _, err := garbage.VerifyAndDecode(); err == nil {
		t.Fatal("garbage-key beacon verified")
	}
}

func TestSignedBSMWireErrors(t *testing.T) {
	if _, err := DecodeSignedBSM(nil); err == nil {
		t.Fatal("nil decoded")
	}
	if _, err := DecodeSignedBSM([]byte{5, 0, 1}); err == nil {
		t.Fatal("truncated part decoded")
	}
	signer, _ := vdapcrypto.NewSigner()
	signed, _ := SignBSM(testBSM(), signer)
	wire, _ := signed.Encode()
	if _, err := DecodeSignedBSM(append(wire, 0xAA)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := (SignedBSM{}).Encode(); err == nil {
		t.Fatal("empty frame encoded")
	}
	if _, err := SignBSM(testBSM(), nil); err == nil {
		t.Fatal("nil signer accepted")
	}
	bad := testBSM()
	bad.Pseudonym = "short"
	if _, err := SignBSM(bad, signer); err == nil {
		t.Fatal("invalid beacon signed")
	}
}

func TestSignerKeysUnlinkableAcrossEpochs(t *testing.T) {
	// Two epochs, two signers: same vehicle, different keys — verifiers
	// cannot link them.
	s1, _ := vdapcrypto.NewSigner()
	s2, _ := vdapcrypto.NewSigner()
	if string(s1.PublicKey()) == string(s2.PublicKey()) {
		t.Fatal("fresh signers share a key")
	}
	b := testBSM()
	signed1, _ := SignBSM(b, s1)
	// Epoch-2 verifiers reject epoch-1 signatures under the new key.
	cross := signed1
	cross.PubKey = s2.PublicKey()
	if _, err := cross.VerifyAndDecode(); err == nil {
		t.Fatal("cross-epoch signature verified")
	}
}

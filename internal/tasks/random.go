package tasks

import (
	"fmt"

	"repro/internal/hardware"
	"repro/internal/sim"
)

// RandomDAGConfig bounds the random-workload generator used for scheduler
// fuzzing and property tests.
type RandomDAGConfig struct {
	// MinTasks and MaxTasks bound the DAG size. Zero means 3..12.
	MinTasks int
	MaxTasks int
	// MaxGFLOP bounds per-task work. Zero means 20.
	MaxGFLOP float64
	// MaxBytes bounds per-task input/output sizes. Zero means 1 MB.
	MaxBytes float64
	// EdgeProb is the chance of a dependency between any earlier/later
	// task pair. Zero means 0.3.
	EdgeProb float64
}

func (c RandomDAGConfig) withDefaults() RandomDAGConfig {
	if c.MinTasks == 0 {
		c.MinTasks = 3
	}
	if c.MaxTasks == 0 {
		c.MaxTasks = 12
	}
	if c.MaxGFLOP == 0 {
		c.MaxGFLOP = 20
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 1 << 20
	}
	if c.EdgeProb == 0 {
		c.EdgeProb = 0.3
	}
	return c
}

// randomClasses are the classes random tasks draw from. DNNTraining and
// Crypto are excluded: not every catalog device runs them, so random DAGs
// stay placeable on any reasonable platform.
var randomClasses = []hardware.Class{
	hardware.General, hardware.Vision, hardware.DNNInference, hardware.Codec,
}

// RandomDAG generates a valid, acyclic, connected-enough DAG. Generation
// is deterministic given the RNG state.
func RandomDAG(name string, cfg RandomDAGConfig, rng *sim.RNG) (*DAG, error) {
	if rng == nil {
		return nil, fmt.Errorf("tasks: nil RNG")
	}
	cfg = cfg.withDefaults()
	if cfg.MinTasks < 1 || cfg.MaxTasks < cfg.MinTasks {
		return nil, fmt.Errorf("tasks: bad size bounds [%d, %d]", cfg.MinTasks, cfg.MaxTasks)
	}
	n := cfg.MinTasks + rng.Intn(cfg.MaxTasks-cfg.MinTasks+1)
	d := &DAG{Name: name, Tasks: make([]*Task, 0, n)}
	for i := 0; i < n; i++ {
		t := &Task{
			ID:          fmt.Sprintf("t%d", i),
			Name:        fmt.Sprintf("random task %d", i),
			Class:       randomClasses[rng.Intn(len(randomClasses))],
			GFLOP:       rng.Uniform(0.01, cfg.MaxGFLOP),
			InputBytes:  rng.Uniform(64, cfg.MaxBytes),
			OutputBytes: rng.Uniform(64, cfg.MaxBytes),
			MemoryMB:    rng.Uniform(1, 256),
		}
		// Edges only from earlier to later tasks: acyclic by construction.
		for j := 0; j < i; j++ {
			if rng.Bernoulli(cfg.EdgeProb) {
				t.Deps = append(t.Deps, fmt.Sprintf("t%d", j))
			}
		}
		d.Tasks = append(d.Tasks, t)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("tasks: generated invalid DAG: %w", err)
	}
	return d, nil
}

// Package tasks models the units of computation OpenVDAP schedules: single
// tasks with a compute class and cost, and DAGs of tasks with data
// dependencies. It also carries the library of paper workloads (Table I
// detectors, Inception-v3, the three-stage license-plate pipeline) whose
// cost constants are calibrated against the paper's measurements.
package tasks

import (
	"fmt"
	"sort"

	"repro/internal/hardware"
)

// Task is one schedulable unit of work.
type Task struct {
	// ID is unique within a DAG.
	ID string
	// Name is a human-readable label.
	Name string
	// Class selects the hardware efficiency profile.
	Class hardware.Class
	// GFLOP is the computational cost in billions of floating-point ops.
	GFLOP float64
	// InputBytes is data consumed from outside or from predecessors.
	InputBytes float64
	// OutputBytes is data produced for successors or the caller.
	OutputBytes float64
	// MemoryMB is the working-set the executing device must hold.
	MemoryMB float64
	// Deps lists IDs of tasks that must complete first.
	Deps []string
	// Pinned, when non-empty, restricts execution to the named device.
	Pinned string
}

// Validate reports structural errors in the task itself.
func (t *Task) Validate() error {
	if t.ID == "" {
		return fmt.Errorf("tasks: task has no ID")
	}
	if t.GFLOP < 0 {
		return fmt.Errorf("tasks: task %s has negative work", t.ID)
	}
	if t.InputBytes < 0 || t.OutputBytes < 0 {
		return fmt.Errorf("tasks: task %s has negative data size", t.ID)
	}
	if t.MemoryMB < 0 {
		return fmt.Errorf("tasks: task %s has negative memory", t.ID)
	}
	return nil
}

// DAG is a directed acyclic graph of tasks: an application decomposed by
// the DSF task partitioner (paper §IV-B2).
type DAG struct {
	Name  string
	Tasks []*Task
}

// Validate checks IDs are unique, dependencies resolve, and no cycle exists.
func (d *DAG) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("tasks: DAG has no name")
	}
	if len(d.Tasks) == 0 {
		return fmt.Errorf("tasks: DAG %s has no tasks", d.Name)
	}
	byID := make(map[string]*Task, len(d.Tasks))
	for _, t := range d.Tasks {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("DAG %s: %w", d.Name, err)
		}
		if _, dup := byID[t.ID]; dup {
			return fmt.Errorf("tasks: DAG %s has duplicate task ID %q", d.Name, t.ID)
		}
		byID[t.ID] = t
	}
	for _, t := range d.Tasks {
		for _, dep := range t.Deps {
			if _, ok := byID[dep]; !ok {
				return fmt.Errorf("tasks: DAG %s task %s depends on unknown %q", d.Name, t.ID, dep)
			}
		}
	}
	if _, err := d.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Get returns the task with the given ID.
func (d *DAG) Get(id string) (*Task, bool) {
	for _, t := range d.Tasks {
		if t.ID == id {
			return t, true
		}
	}
	return nil, false
}

// Roots returns tasks with no dependencies, in declaration order.
func (d *DAG) Roots() []*Task {
	var roots []*Task
	for _, t := range d.Tasks {
		if len(t.Deps) == 0 {
			roots = append(roots, t)
		}
	}
	return roots
}

// Successors returns the IDs of tasks that directly depend on id.
func (d *DAG) Successors(id string) []string {
	var out []string
	for _, t := range d.Tasks {
		for _, dep := range t.Deps {
			if dep == id {
				out = append(out, t.ID)
			}
		}
	}
	return out
}

// TopoOrder returns the tasks in a dependency-respecting order with stable
// tie-breaking (declaration order). It fails on cycles.
func (d *DAG) TopoOrder() ([]*Task, error) {
	indeg := make(map[string]int, len(d.Tasks))
	pos := make(map[string]int, len(d.Tasks))
	for i, t := range d.Tasks {
		indeg[t.ID] = len(t.Deps)
		pos[t.ID] = i
	}
	var ready []*Task
	for _, t := range d.Tasks {
		if indeg[t.ID] == 0 {
			ready = append(ready, t)
		}
	}
	var order []*Task
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return pos[ready[i].ID] < pos[ready[j].ID] })
		t := ready[0]
		ready = ready[1:]
		order = append(order, t)
		for _, succID := range d.Successors(t.ID) {
			indeg[succID]--
			if indeg[succID] == 0 {
				succ, _ := d.Get(succID)
				ready = append(ready, succ)
			}
		}
	}
	if len(order) != len(d.Tasks) {
		return nil, fmt.Errorf("tasks: DAG %s contains a cycle", d.Name)
	}
	return order, nil
}

// TotalGFLOP sums the work of every task.
func (d *DAG) TotalGFLOP() float64 {
	var total float64
	for _, t := range d.Tasks {
		total += t.GFLOP
	}
	return total
}

// CriticalPathGFLOP returns the largest cumulative work along any
// dependency chain — the lower bound on makespan with infinite devices of
// equal speed.
func (d *DAG) CriticalPathGFLOP() (float64, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return 0, err
	}
	acc := make(map[string]float64, len(order))
	var best float64
	for _, t := range order {
		var maxDep float64
		for _, dep := range t.Deps {
			if acc[dep] > maxDep {
				maxDep = acc[dep]
			}
		}
		acc[t.ID] = maxDep + t.GFLOP
		if acc[t.ID] > best {
			best = acc[t.ID]
		}
	}
	return best, nil
}

// Clone returns a deep copy of the DAG (tasks and dep slices).
func (d *DAG) Clone() *DAG {
	out := &DAG{Name: d.Name, Tasks: make([]*Task, len(d.Tasks))}
	for i, t := range d.Tasks {
		cp := *t
		cp.Deps = append([]string(nil), t.Deps...)
		out.Tasks[i] = &cp
	}
	return out
}

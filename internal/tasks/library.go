package tasks

import "repro/internal/hardware"

// Table-I calibration. The paper measured these on one 2.4 GHz AWS vCPU,
// whose catalog entry runs Vision and DNNInference work at 10 GFLOP/s.
// Each workload's cost constant is therefore latency × 10 GFLOP/s, which
// reproduces Table I exactly and fixes the workloads' relative weight
// (DNN ≈ 51× Haar ≈ 1030× lane detection) everywhere else.
const (
	// LaneDetectionGFLOP reproduces 13.57 ms on the Table-I host.
	LaneDetectionGFLOP = 0.1357
	// VehicleDetectionHaarGFLOP reproduces 269.46 ms.
	VehicleDetectionHaarGFLOP = 2.6946
	// VehicleDetectionDNNGFLOP reproduces 13 971.98 ms.
	VehicleDetectionDNNGFLOP = 139.7198
)

// Frame sizes for the workload library (bytes). A 720p dash-cam frame at
// the sensors package's ~10:1 JPEG model.
const (
	frameBytes720p = 138_240
	roiBytes       = 30_000
	plateBytes     = 4_000
	resultBytes    = 256
)

// LaneDetection returns the classic-vision lane detector as a single task.
func LaneDetection() *Task {
	return &Task{
		ID: "lane-detect", Name: "Lane Detection",
		Class: hardware.Vision, GFLOP: LaneDetectionGFLOP,
		InputBytes: frameBytes720p, OutputBytes: resultBytes, MemoryMB: 64,
	}
}

// VehicleDetectionHaar returns the Haar-cascade vehicle detector.
func VehicleDetectionHaar() *Task {
	return &Task{
		ID: "vehicle-detect-haar", Name: "Vehicle Detection (Haar)",
		Class: hardware.Vision, GFLOP: VehicleDetectionHaarGFLOP,
		InputBytes: frameBytes720p, OutputBytes: resultBytes, MemoryMB: 128,
	}
}

// VehicleDetectionDNN returns the TensorFlow-style DNN vehicle detector.
func VehicleDetectionDNN() *Task {
	return &Task{
		ID: "vehicle-detect-dnn", Name: "Vehicle Detection (TensorFlow)",
		Class: hardware.DNNInference, GFLOP: VehicleDetectionDNNGFLOP,
		InputBytes: frameBytes720p, OutputBytes: resultBytes, MemoryMB: 1024,
	}
}

// InceptionV3 returns the Figure-3 image-recognition workload.
func InceptionV3() *Task {
	return &Task{
		ID: "inception-v3", Name: "Inception v3",
		Class: hardware.DNNInference, GFLOP: hardware.InceptionV3GFLOP,
		InputBytes: frameBytes720p, OutputBytes: resultBytes, MemoryMB: 512,
	}
}

// Table1Workloads returns the three Table-I workloads in the paper's order.
func Table1Workloads() []*Task {
	return []*Task{LaneDetection(), VehicleDetectionHaar(), VehicleDetectionDNN()}
}

// ALPR returns the three-stage license-plate recognition pipeline the paper
// cites from Firework [17] and uses for the kidnapper-search (mobile A3)
// polymorphic service: motion detection → plate detection → plate number
// recognition, each stage placeable on a different tier.
func ALPR() *DAG {
	return &DAG{
		Name: "alpr",
		Tasks: []*Task{
			{
				ID: "motion-detect", Name: "Motion Detection",
				Class: hardware.Vision, GFLOP: 0.08,
				InputBytes: frameBytes720p, OutputBytes: roiBytes, MemoryMB: 64,
			},
			{
				ID: "plate-detect", Name: "License Plate Detection",
				Class: hardware.Vision, GFLOP: 1.2,
				InputBytes: roiBytes, OutputBytes: plateBytes, MemoryMB: 128,
				Deps: []string{"motion-detect"},
			},
			{
				ID: "plate-recognize", Name: "License Plate Recognition",
				Class: hardware.DNNInference, GFLOP: 6.5,
				InputBytes: plateBytes, OutputBytes: resultBytes, MemoryMB: 256,
				Deps: []string{"plate-detect"},
			},
		},
	}
}

// PedestrianAlert returns the safety-critical ADAS pipeline: detection plus
// an alert-decision step, used as a high-priority EdgeOSv service.
func PedestrianAlert() *DAG {
	return &DAG{
		Name: "pedestrian-alert",
		Tasks: []*Task{
			{
				ID: "ped-detect", Name: "Pedestrian Detection",
				Class: hardware.DNNInference, GFLOP: 8.0,
				InputBytes: frameBytes720p, OutputBytes: 1024, MemoryMB: 512,
			},
			{
				ID: "alert-decide", Name: "Alert Decision",
				Class: hardware.General, GFLOP: 0.01,
				InputBytes: 1024, OutputBytes: resultBytes, MemoryMB: 16,
				Deps: []string{"ped-detect"},
			},
		},
	}
}

// Diagnostics returns the real-time diagnostics pipeline (paper §II-A):
// collect OBD window → feature extraction → fault prediction.
func Diagnostics() *DAG {
	return &DAG{
		Name: "diagnostics",
		Tasks: []*Task{
			{
				ID: "obd-window", Name: "OBD Window Assembly",
				Class: hardware.General, GFLOP: 0.005,
				InputBytes: 32_768, OutputBytes: 16_384, MemoryMB: 8,
			},
			{
				ID: "feature-extract", Name: "Feature Extraction",
				Class: hardware.Vision, GFLOP: 0.12,
				InputBytes: 16_384, OutputBytes: 2_048, MemoryMB: 32,
				Deps: []string{"obd-window"},
			},
			{
				ID: "fault-predict", Name: "Fault Prediction",
				Class: hardware.DNNInference, GFLOP: 0.4,
				InputBytes: 2_048, OutputBytes: resultBytes, MemoryMB: 64,
				Deps: []string{"feature-extract"},
			},
		},
	}
}

// InfotainmentDecode returns the in-vehicle infotainment workload (§II-C):
// a downloaded video chunk decoded and enhanced locally.
func InfotainmentDecode() *DAG {
	return &DAG{
		Name: "infotainment-decode",
		Tasks: []*Task{
			{
				ID: "chunk-decode", Name: "Video Chunk Decode",
				Class: hardware.Codec, GFLOP: 2.4,
				InputBytes: 1_450_000, OutputBytes: 6_220_800, MemoryMB: 256,
			},
			{
				ID: "enhance", Name: "Quality Enhancement",
				Class: hardware.DNNInference, GFLOP: 3.0,
				InputBytes: 6_220_800, OutputBytes: 6_220_800, MemoryMB: 512,
				Deps: []string{"chunk-decode"},
			},
		},
	}
}

// PBEAMRefine returns the on-vehicle pBEAM transfer-learning step (§IV-E):
// fine-tuning the compressed common model on local driving data.
func PBEAMRefine() *DAG {
	return &DAG{
		Name: "pbeam-refine",
		Tasks: []*Task{
			{
				ID: "prepare-batch", Name: "Driving Data Batch Preparation",
				Class: hardware.General, GFLOP: 0.02,
				InputBytes: 262_144, OutputBytes: 131_072, MemoryMB: 32,
			},
			{
				ID: "fine-tune", Name: "Transfer Learning Fine-Tune",
				Class: hardware.DNNTraining, GFLOP: 25,
				InputBytes: 131_072, OutputBytes: 4_194_304, MemoryMB: 1024,
				Deps: []string{"prepare-batch"},
			},
		},
	}
}

// SensorFusion returns the level-3+ perception pipeline the paper's ADAS
// section implies: camera detection and LiDAR clustering run in parallel,
// their outputs fuse, and a trajectory planner consumes the fused scene.
// The parallel branches are what heterogeneous scheduling exploits.
func SensorFusion() *DAG {
	return &DAG{
		Name: "sensor-fusion",
		Tasks: []*Task{
			{
				ID: "camera-detect", Name: "Camera Object Detection",
				Class: hardware.DNNInference, GFLOP: 8.0,
				InputBytes: frameBytes720p, OutputBytes: 4_096, MemoryMB: 512,
			},
			{
				ID: "lidar-cluster", Name: "LiDAR Point Clustering",
				Class: hardware.Vision, GFLOP: 2.5,
				InputBytes: 921_600, OutputBytes: 8_192, MemoryMB: 256,
			},
			{
				ID: "fuse", Name: "Camera/LiDAR Fusion",
				Class: hardware.General, GFLOP: 0.15,
				InputBytes: 12_288, OutputBytes: 6_144, MemoryMB: 64,
				Deps: []string{"camera-detect", "lidar-cluster"},
			},
			{
				ID: "plan", Name: "Trajectory Planning",
				Class: hardware.General, GFLOP: 0.4,
				InputBytes: 6_144, OutputBytes: 1_024, MemoryMB: 64,
				Deps: []string{"fuse"},
			},
		},
	}
}

// Library returns every named DAG workload, keyed by name.
func Library() map[string]*DAG {
	dags := []*DAG{ALPR(), PedestrianAlert(), Diagnostics(), InfotainmentDecode(), PBEAMRefine(), SensorFusion()}
	out := make(map[string]*DAG, len(dags))
	for _, d := range dags {
		out[d.Name] = d
	}
	return out
}

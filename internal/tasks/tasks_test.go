package tasks

import (
	"math"
	"testing"
	"time"

	"repro/internal/hardware"
	"repro/internal/sim"
)

func TestTaskValidate(t *testing.T) {
	bad := []Task{
		{},
		{ID: "x", GFLOP: -1},
		{ID: "x", InputBytes: -1},
		{ID: "x", OutputBytes: -1},
		{ID: "x", MemoryMB: -1},
	}
	for i, task := range bad {
		task := task
		if err := task.Validate(); err == nil {
			t.Errorf("case %d: Validate passed", i)
		}
	}
	good := Task{ID: "ok", Class: hardware.General, GFLOP: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
}

func TestDAGValidate(t *testing.T) {
	cases := []struct {
		name string
		dag  DAG
	}{
		{"no name", DAG{Tasks: []*Task{{ID: "a"}}}},
		{"empty", DAG{Name: "x"}},
		{"dup id", DAG{Name: "x", Tasks: []*Task{{ID: "a"}, {ID: "a"}}}},
		{"unknown dep", DAG{Name: "x", Tasks: []*Task{{ID: "a", Deps: []string{"b"}}}}},
		{"cycle", DAG{Name: "x", Tasks: []*Task{
			{ID: "a", Deps: []string{"b"}},
			{ID: "b", Deps: []string{"a"}},
		}}},
		{"self cycle", DAG{Name: "x", Tasks: []*Task{{ID: "a", Deps: []string{"a"}}}}},
	}
	for _, tc := range cases {
		if err := tc.dag.Validate(); err == nil {
			t.Errorf("%s: Validate passed", tc.name)
		}
	}
}

func TestTopoOrderRespectsDepsAndDeclarationOrder(t *testing.T) {
	d := DAG{Name: "x", Tasks: []*Task{
		{ID: "c", Deps: []string{"a", "b"}},
		{ID: "a"},
		{ID: "b", Deps: []string{"a"}},
		{ID: "d"},
	}}
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	posOf := map[string]int{}
	for i, task := range order {
		posOf[task.ID] = i
	}
	if posOf["a"] > posOf["b"] || posOf["b"] > posOf["c"] || posOf["a"] > posOf["c"] {
		t.Fatalf("topo order violates deps: %v", posOf)
	}
	// Ready ties break on declaration order: the first ready set is {a, d}
	// and a (index 1) precedes d (index 3). After a, b (index 2) precedes
	// d; after b, c (index 0) precedes d.
	want := []string{"a", "b", "c", "d"}
	for i, id := range want {
		if order[i].ID != id {
			t.Fatalf("tie-break order[%d] = %s, want %s", i, order[i].ID, id)
		}
	}
}

func TestRootsAndSuccessors(t *testing.T) {
	d := ALPR()
	roots := d.Roots()
	if len(roots) != 1 || roots[0].ID != "motion-detect" {
		t.Fatalf("roots = %v", roots)
	}
	succ := d.Successors("motion-detect")
	if len(succ) != 1 || succ[0] != "plate-detect" {
		t.Fatalf("successors = %v", succ)
	}
	if got := d.Successors("plate-recognize"); len(got) != 0 {
		t.Fatalf("sink has successors: %v", got)
	}
}

func TestCriticalPath(t *testing.T) {
	d := DAG{Name: "x", Tasks: []*Task{
		{ID: "a", GFLOP: 1},
		{ID: "b", GFLOP: 5},
		{ID: "c", GFLOP: 2, Deps: []string{"a"}},
		{ID: "d", GFLOP: 1, Deps: []string{"b", "c"}},
	}}
	cp, err := d.CriticalPathGFLOP()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 6 { // b(5) -> d(1)
		t.Fatalf("critical path = %v, want 6", cp)
	}
	if d.TotalGFLOP() != 9 {
		t.Fatalf("total = %v, want 9", d.TotalGFLOP())
	}
}

func TestClone(t *testing.T) {
	d := ALPR()
	c := d.Clone()
	c.Tasks[0].GFLOP = 999
	c.Tasks[1].Deps[0] = "poisoned"
	if d.Tasks[0].GFLOP == 999 {
		t.Fatal("clone shares task structs")
	}
	if d.Tasks[1].Deps[0] == "poisoned" {
		t.Fatal("clone shares dep slices")
	}
}

func TestGet(t *testing.T) {
	d := ALPR()
	if task, ok := d.Get("plate-detect"); !ok || task.Name != "License Plate Detection" {
		t.Fatalf("Get = %v, %v", task, ok)
	}
	if _, ok := d.Get("nope"); ok {
		t.Fatal("Get found nonexistent task")
	}
}

// TestTable1Calibration verifies that the workload constants reproduce the
// paper's Table I exactly on the calibrated AWS vCPU.
func TestTable1Calibration(t *testing.T) {
	host, err := hardware.Lookup(hardware.DeviceAWSVCPU)
	if err != nil {
		t.Fatal(err)
	}
	wantMS := map[string]float64{
		"lane-detect":         13.57,
		"vehicle-detect-haar": 269.46,
		"vehicle-detect-dnn":  13971.98,
	}
	for _, task := range Table1Workloads() {
		d, err := host.ExecTime(task.Class, task.GFLOP)
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		gotMS := float64(d) / float64(time.Millisecond)
		if math.Abs(gotMS-wantMS[task.ID]) > 0.01 {
			t.Errorf("%s latency = %.2f ms, want %.2f", task.ID, gotMS, wantMS[task.ID])
		}
	}
}

// TestTable1Ratios checks the paper's headline ratio: the DNN detector is
// about 51x slower than Haar on the same CPU.
func TestTable1Ratios(t *testing.T) {
	ratio := VehicleDetectionDNNGFLOP / VehicleDetectionHaarGFLOP
	if math.Abs(ratio-51.85) > 0.5 {
		t.Fatalf("DNN/Haar ratio = %.2f, want ~51.85", ratio)
	}
}

func TestLibraryDAGsAllValid(t *testing.T) {
	lib := Library()
	if len(lib) < 6 {
		t.Fatalf("library has %d DAGs, want >= 6", len(lib))
	}
	for name, d := range lib {
		if err := d.Validate(); err != nil {
			t.Errorf("library DAG %s invalid: %v", name, err)
		}
		if d.Name != name {
			t.Errorf("DAG keyed %q but named %q", name, d.Name)
		}
	}
}

func TestSingleTaskWorkloadsValid(t *testing.T) {
	for _, task := range []*Task{LaneDetection(), VehicleDetectionHaar(), VehicleDetectionDNN(), InceptionV3()} {
		if err := task.Validate(); err != nil {
			t.Errorf("%s invalid: %v", task.ID, err)
		}
	}
}

func TestALPRStageOrdering(t *testing.T) {
	d := ALPR()
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"motion-detect", "plate-detect", "plate-recognize"}
	for i, task := range order {
		if task.ID != want[i] {
			t.Fatalf("ALPR order[%d] = %s, want %s", i, task.ID, want[i])
		}
	}
	// Data flows shrink along the pipeline — the premise of edge filtering.
	for i := 1; i < len(order); i++ {
		if order[i].InputBytes > order[i-1].InputBytes {
			t.Fatalf("ALPR stage %s input grew", order[i].ID)
		}
	}
}

func TestSensorFusionParallelBranches(t *testing.T) {
	d := SensorFusion()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	roots := d.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2 parallel branches", len(roots))
	}
	// The critical path excludes the shorter parallel branch.
	cp, err := d.CriticalPathGFLOP()
	if err != nil {
		t.Fatal(err)
	}
	if cp >= d.TotalGFLOP() {
		t.Fatalf("critical path %v not below total %v (no parallelism)", cp, d.TotalGFLOP())
	}
	fuse, _ := d.Get("fuse")
	if len(fuse.Deps) != 2 {
		t.Fatalf("fuse deps = %v", fuse.Deps)
	}
}

func TestRandomDAGDefaults(t *testing.T) {
	rng := sim.NewRNG(42)
	for i := 0; i < 10; i++ {
		d, err := RandomDAG("r", RandomDAGConfig{}, rng.Fork())
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Tasks) < 3 || len(d.Tasks) > 12 {
			t.Fatalf("size = %d outside defaults", len(d.Tasks))
		}
		for _, task := range d.Tasks {
			if task.GFLOP <= 0 || task.GFLOP > 20 {
				t.Fatalf("work = %v outside defaults", task.GFLOP)
			}
		}
	}
	// Custom bounds respected.
	d, err := RandomDAG("r", RandomDAGConfig{MinTasks: 7, MaxTasks: 7}, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tasks) != 7 {
		t.Fatalf("fixed size = %d", len(d.Tasks))
	}
}

package ddi

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/geo"
	"repro/internal/sensors"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func newDDI(t *testing.T) *DDI {
	t.Helper()
	road, err := geo.NewRoad(10000)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Options{
		Dir:      t.TempDir(),
		Mobility: geo.Mobility{Road: road, SpeedMS: 15},
	}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Dir: t.TempDir()}, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
	if _, err := New(Options{}, sim.NewRNG(1)); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestCollectStoresAllSources(t *testing.T) {
	d := newDDI(t)
	recs, err := d.Collect(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// OBD, GPS, weather, traffic always; social only when events fired.
	if len(recs) < 4 {
		t.Fatalf("collected %d records, want >= 4", len(recs))
	}
	seen := map[Source]bool{}
	for _, r := range recs {
		seen[r.Source] = true
		if r.ID == 0 {
			t.Fatal("record without ID")
		}
		if r.At != time.Minute {
			t.Fatalf("record at %v", r.At)
		}
	}
	for _, s := range []Source{SourceOBD, SourceGPS, SourceWeather, SourceTraffic} {
		if !seen[s] {
			t.Fatalf("source %s missing", s)
		}
	}
	// OBD payload decodes into a reading.
	obd := d.Store().Select(Query{Source: SourceOBD})
	var reading sensors.OBDReading
	if err := json.Unmarshal(obd[0].Payload, &reading); err != nil {
		t.Fatalf("obd payload: %v", err)
	}
	if reading.SpeedKPH < 40 || reading.SpeedKPH > 70 {
		t.Fatalf("speed = %v, want ~54 kph", reading.SpeedKPH)
	}
}

func TestCollectSocialEventsEventually(t *testing.T) {
	d := newDDI(t)
	total := 0
	for m := 1; m <= 120; m++ {
		recs, err := d.Collect(time.Duration(m) * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.Source == SourceSocial {
				total++
			}
		}
	}
	if total == 0 {
		t.Fatal("no social events in 2 hours (mean interval 10 min)")
	}
}

func TestUploadDownloadRoundTrip(t *testing.T) {
	d := newDDI(t)
	rec, err := d.Upload(time.Second, SourceUser, 10, 20, []byte(`{"app":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	got, lat, err := d.DownloadByID(2*time.Second, rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != rec.ID || string(got.Payload) != `{"app":"x"}` {
		t.Fatalf("round trip = %+v", got)
	}
	if lat != memHitLatency {
		t.Fatalf("cached download latency = %v, want %v", lat, memHitLatency)
	}
	if _, err := d.Upload(0, SourceUser, 0, 0, nil); err == nil {
		t.Fatal("empty payload accepted")
	}
}

// TestTwoTierLatency is the E8 property: a cache hit is much faster than
// the disk path, and an expired entry falls back to disk then re-promotes.
func TestTwoTierLatency(t *testing.T) {
	d := newDDI(t)
	rec, err := d.Upload(0, SourceUser, 0, 0, []byte(`{"k":"v"}`))
	if err != nil {
		t.Fatal(err)
	}
	_, hot, err := d.DownloadByID(time.Second, rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Past the default 5-minute TTL the cache misses.
	_, cold, err := d.DownloadByID(10*time.Minute, rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cold <= hot {
		t.Fatalf("disk path (%v) not slower than cache hit (%v)", cold, hot)
	}
	// Promotion: the very next access is hot again.
	_, hot2, err := d.DownloadByID(10*time.Minute+time.Second, rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if hot2 != memHitLatency {
		t.Fatalf("promoted access latency = %v", hot2)
	}
}

func TestDownloadRangeQuery(t *testing.T) {
	d := newDDI(t)
	for i := 1; i <= 5; i++ {
		if _, err := d.Collect(time.Duration(i) * time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	recs, lat, err := d.Download(6*time.Minute, Query{
		Source: SourceOBD, From: 2 * time.Minute, To: 4 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("range query = %d records, want 3", len(recs))
	}
	if lat <= 0 {
		t.Fatal("range query has no latency")
	}
	if _, _, err := d.DownloadByID(0, 99999); err == nil {
		t.Fatal("missing record download succeeded")
	}
}

func TestMigrateToCloud(t *testing.T) {
	d := newDDI(t)
	for i := 1; i <= 10; i++ {
		if _, err := d.Collect(time.Duration(i) * time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	before := d.Store().Count()
	server := cloud.NewDataServer()
	n, dur, err := d.MigrateToCloud(server, "pseudo-abc", 6*time.Minute, func(bytes float64) (time.Duration, error) {
		return time.Duration(bytes/1e6*float64(time.Second)) + time.Millisecond, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || dur <= 0 {
		t.Fatalf("migrated %d in %v", n, dur)
	}
	if server.Count() != n {
		t.Fatalf("server has %d, migrated %d", server.Count(), n)
	}
	if d.Store().Count() != before-n {
		t.Fatalf("local store kept migrated records: %d -> %d", before, d.Store().Count())
	}
	// Pseudonym, not identity, crosses the wire.
	for _, r := range server.Query("", 0, time.Hour) {
		if r.Vehicle != "pseudo-abc" {
			t.Fatalf("cloud record carries %q", r.Vehicle)
		}
	}
	// Nothing left to migrate.
	n2, _, err := d.MigrateToCloud(server, "pseudo-abc", 6*time.Minute, nil)
	if err != nil || n2 != 0 {
		t.Fatalf("second migration = %d, %v", n2, err)
	}
	if _, _, err := d.MigrateToCloud(nil, "p", time.Minute, nil); err == nil {
		t.Fatal("nil server accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	d := newDDI(t)
	rec, _ := d.Upload(0, SourceUser, 0, 0, []byte("{}"))
	if _, _, err := d.DownloadByID(time.Second, rec.ID); err != nil {
		t.Fatal(err)
	}
	ups, downs, hitRate := d.Stats()
	if ups != 1 || downs != 1 {
		t.Fatalf("stats = %d/%d", ups, downs)
	}
	if hitRate <= 0 {
		t.Fatal("hit rate not recorded")
	}
}

func TestFaultInjectionReachesStoredData(t *testing.T) {
	d := newDDI(t)
	d.OBD().InjectFault(sensors.FaultOverheat)
	for i := 1; i <= 60; i++ {
		if _, err := d.Collect(time.Duration(i) * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	recs := d.Store().Select(Query{Source: SourceOBD})
	foundDTC := false
	for _, r := range recs {
		var reading sensors.OBDReading
		if err := json.Unmarshal(r.Payload, &reading); err != nil {
			t.Fatal(err)
		}
		for _, c := range reading.DTCs {
			if c == sensors.DTCOverheat {
				foundDTC = true
			}
		}
	}
	if !foundDTC {
		t.Fatal("injected overheat never surfaced a DTC in stored data")
	}
}

func TestInstrumentWiresCacheCountersIntoRegistry(t *testing.T) {
	d := newDDI(t)
	reg := telemetry.NewRegistry()
	tr := trace.New(nil)
	d.Instrument(tr, reg)

	rec, err := d.Upload(0, SourceUser, 0, 0, []byte(`{"k":"v"}`))
	if err != nil {
		t.Fatal(err)
	}
	// Hit, hit, then TTL-expired miss with disk fallback.
	if _, _, err := d.DownloadByID(time.Second, rec.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.DownloadByID(2*time.Second, rec.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.DownloadByID(10*time.Minute, rec.ID); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ddi.cache.hits"); got != 2 {
		t.Fatalf("ddi.cache.hits = %v, want 2", got)
	}
	if got := reg.Counter("ddi.cache.misses"); got != 1 {
		t.Fatalf("ddi.cache.misses = %v, want 1", got)
	}
	if got := reg.Counter("ddi.cache.expirations"); got != 1 {
		t.Fatalf("ddi.cache.expirations = %v, want 1", got)
	}
	if got := reg.Counter("ddi.uploads"); got != 1 {
		t.Fatalf("ddi.uploads = %v, want 1", got)
	}
	if got := reg.Counter("ddi.downloads"); got != 3 {
		t.Fatalf("ddi.downloads = %v, want 3", got)
	}
	if got := reg.Counter("ddi.disk_reads"); got != 1 {
		t.Fatalf("ddi.disk_reads = %v, want 1", got)
	}
	if h := reg.Histogram("ddi.read_ms"); h == nil || h.Count() != 3 {
		t.Fatalf("ddi.read_ms histogram = %+v", h)
	}
	if tr.SpanCount() == 0 {
		t.Fatal("no ddi spans recorded")
	}
}

func TestCacheEvictionCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, err := NewMemCache(2, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTelemetry(reg)
	for id := uint64(1); id <= 4; id++ {
		c.Put(Record{ID: id, Source: SourceUser, At: 1, Payload: []byte("x")}, 0)
	}
	if got := reg.Counter("ddi.cache.evictions"); got != 2 {
		t.Fatalf("ddi.cache.evictions = %v, want 2", got)
	}
}

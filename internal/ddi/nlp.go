package ddi

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// This file implements the Natural Language Processing stage of the DDI
// collector (paper Figure 7): social-web posts arrive as free text and are
// parsed into structured SocialEvent records before storage.

// Post is one raw social-web item.
type Post struct {
	At   string `json:"at"` // informational; structured time comes from collection
	Text string `json:"text"`
}

// kindPhrases maps event kinds to the phrasing templates posts use.
var kindPhrases = map[string][]string{
	"accident":               {"multi car crash", "bad accident", "collision reported", "fender bender"},
	"road-closure":           {"road closed", "full closure", "street is shut"},
	"amber-alert":            {"amber alert issued", "amber alert active"},
	"severe-weather-warning": {"severe storm warning", "blizzard warning", "tornado watch"},
	"parade":                 {"parade today", "street festival"},
}

// severityScanOrder lists qualifiers from worst to mildest for extraction.
var severityScanOrder = []string{
	"fatal", "severe", "huge", "major", "serious", "significant", "moderate", "minor", "small",
}

// severityWords maps qualifier words to severity levels.
var severityWords = map[string]int{
	"minor":       1,
	"small":       1,
	"moderate":    2,
	"significant": 3,
	"major":       4,
	"serious":     4,
	"severe":      5,
	"fatal":       5,
	"huge":        5,
}

// ComposePost renders a SocialEvent as the free-text post a social feed
// would carry — the inverse of ExtractEvent, used by the synthetic feed.
func ComposePost(ev SocialEvent, rng *sim.RNG) (Post, error) {
	phrases, ok := kindPhrases[ev.Kind]
	if !ok {
		return Post{}, fmt.Errorf("ddi: unknown event kind %q", ev.Kind)
	}
	if rng == nil {
		return Post{}, fmt.Errorf("ddi: nil RNG")
	}
	qualifier := ""
	for w, sev := range severityWords {
		if sev == ev.Severity {
			qualifier = w
			break
		}
	}
	if qualifier == "" {
		qualifier = "moderate"
	}
	phrase := phrases[rng.Intn(len(phrases))]
	marker := int(ev.X / 1609.344)
	text := fmt.Sprintf("heads up: %s %s near mile marker %d, avoid the area", qualifier, phrase, marker)
	return Post{Text: text}, nil
}

// ExtractEvent parses a free-text post into a structured event. The
// boolean is false when the text matches no known event kind.
func ExtractEvent(text string, at time.Duration) (SocialEvent, bool) {
	lower := strings.ToLower(text)
	ev := SocialEvent{At: at, Severity: 2}
	matched := false
	for kind, phrases := range kindPhrases {
		for _, p := range phrases {
			if strings.Contains(lower, p) {
				ev.Kind = kind
				matched = true
				break
			}
		}
		if matched {
			break
		}
	}
	if !matched {
		return SocialEvent{}, false
	}
	// Scan deterministically, highest severity first, so a post carrying
	// several qualifiers reports the worst one.
	for _, w := range severityScanOrder {
		if containsWord(lower, w) {
			ev.Severity = severityWords[w]
			break
		}
	}
	if x, ok := extractMileMarker(lower); ok {
		ev.X = x
	}
	return ev, true
}

// extractMileMarker finds "mile marker N" and converts to meters.
func extractMileMarker(lower string) (float64, bool) {
	const key = "mile marker "
	idx := strings.Index(lower, key)
	if idx < 0 {
		return 0, false
	}
	rest := lower[idx+len(key):]
	end := 0
	for end < len(rest) && rest[end] >= '0' && rest[end] <= '9' {
		end++
	}
	if end == 0 {
		return 0, false
	}
	n, err := strconv.Atoi(rest[:end])
	if err != nil {
		return 0, false
	}
	return float64(n) * 1609.344, true
}

func containsWord(haystack, word string) bool {
	idx := strings.Index(haystack, word)
	if idx < 0 {
		return false
	}
	beforeOK := idx == 0 || haystack[idx-1] == ' '
	after := idx + len(word)
	afterOK := after == len(haystack) || haystack[after] == ' ' || haystack[after] == ',' || haystack[after] == ':'
	return beforeOK && afterOK
}

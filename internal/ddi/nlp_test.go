package ddi

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestExtractEventKinds(t *testing.T) {
	cases := map[string]string{
		"heads up: major multi car crash near mile marker 4": "accident",
		"Road CLOSED at the bridge":                          "road-closure",
		"AMBER ALERT issued for a grey sedan":                "amber-alert",
		"blizzard warning until 6pm":                         "severe-weather-warning",
		"parade today downtown":                              "parade",
	}
	for text, wantKind := range cases {
		ev, ok := ExtractEvent(text, time.Minute)
		if !ok {
			t.Errorf("no event extracted from %q", text)
			continue
		}
		if ev.Kind != wantKind {
			t.Errorf("%q -> kind %s, want %s", text, ev.Kind, wantKind)
		}
		if ev.At != time.Minute {
			t.Errorf("timestamp not carried")
		}
	}
}

func TestExtractEventNoMatch(t *testing.T) {
	for _, text := range []string{"", "nice weather today", "great coffee at the diner"} {
		if _, ok := ExtractEvent(text, 0); ok {
			t.Errorf("extracted event from %q", text)
		}
	}
}

func TestExtractSeverity(t *testing.T) {
	cases := map[string]int{
		"minor fender bender on 5th":              1,
		"significant collision reported downtown": 3,
		"fatal bad accident, avoid the area":      5,
		"collision reported near exit 3":          2, // default
	}
	for text, want := range cases {
		ev, ok := ExtractEvent(text, 0)
		if !ok {
			t.Fatalf("no event from %q", text)
		}
		if ev.Severity != want {
			t.Errorf("%q -> severity %d, want %d", text, ev.Severity, want)
		}
	}
	// Worst qualifier wins.
	ev, _ := ExtractEvent("minor at first but now fatal bad accident", 0)
	if ev.Severity != 5 {
		t.Errorf("multi-qualifier severity = %d, want 5", ev.Severity)
	}
}

func TestExtractMileMarker(t *testing.T) {
	ev, ok := ExtractEvent("bad accident near mile marker 12, lanes blocked", 0)
	if !ok {
		t.Fatal("no event")
	}
	if math.Abs(ev.X-12*1609.344) > 1 {
		t.Fatalf("X = %v, want ~%v", ev.X, 12*1609.344)
	}
	// No marker: X stays zero.
	ev, _ = ExtractEvent("bad accident downtown", 0)
	if ev.X != 0 {
		t.Fatalf("X = %v without marker", ev.X)
	}
	// Marker with no digits is ignored.
	ev, _ = ExtractEvent("bad accident near mile marker unknown", 0)
	if ev.X != 0 {
		t.Fatalf("X = %v for digitless marker", ev.X)
	}
}

func TestComposeExtractRoundTrip(t *testing.T) {
	rng := sim.NewRNG(5)
	for _, kind := range []string{"accident", "road-closure", "amber-alert", "parade", "severe-weather-warning"} {
		for sev := 1; sev <= 5; sev++ {
			orig := SocialEvent{Kind: kind, Severity: sev, X: 8046.72} // mile 5
			post, err := ComposePost(orig, rng)
			if err != nil {
				t.Fatal(err)
			}
			got, ok := ExtractEvent(post.Text, time.Minute)
			if !ok {
				t.Fatalf("compose/extract lost event: %q", post.Text)
			}
			if got.Kind != kind {
				t.Errorf("kind %s -> %s via %q", kind, got.Kind, post.Text)
			}
			// Severe-weather phrases embed the word "severe", which
			// legitimately dominates any milder qualifier.
			if kind != "severe-weather-warning" && got.Severity != sev {
				t.Errorf("%s severity %d -> %d via %q", kind, sev, got.Severity, post.Text)
			}
			if math.Abs(got.X-orig.X) > 1610 { // marker quantizes to whole miles
				t.Errorf("X %v -> %v", orig.X, got.X)
			}
		}
	}
}

func TestComposePostValidation(t *testing.T) {
	if _, err := ComposePost(SocialEvent{Kind: "meteor-strike"}, sim.NewRNG(1)); err == nil {
		t.Fatal("unknown kind composed")
	}
	if _, err := ComposePost(SocialEvent{Kind: "accident"}, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestContainsWordBoundaries(t *testing.T) {
	if containsWord("seminormal text", "minor") {
		t.Fatal("substring matched as word")
	}
	if !containsWord("a minor crash", "minor") {
		t.Fatal("word not matched")
	}
	if !containsWord("minor", "minor") {
		t.Fatal("exact match failed")
	}
	if !containsWord("crash, minor, injuries", "minor") {
		t.Fatal("comma-delimited word not matched")
	}
}

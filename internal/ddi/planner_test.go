package ddi

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// pruningFixture seals one segment per minute over an hour of records.
func pruningFixture(t *testing.T) *DiskStore {
	t.Helper()
	s := openStore(t)
	s.SetSealPolicy(0, time.Minute)
	for i := 0; i < 3600; i++ {
		r := rec(SourceOBD, time.Duration(i)*time.Second, float64(i%100))
		if i%2 == 0 {
			r.Source = SourceGPS
		}
		if _, err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestZoneMapPruning: a narrow window must read only its partition's
// segment and skip the other 59 without touching disk.
func TestZoneMapPruning(t *testing.T) {
	s := pruningFixture(t)
	if got := len(s.Segments()); got != 60 {
		t.Fatalf("sealed %d segments, want 60", got)
	}
	st, err := s.Explain(Query{From: 30 * time.Minute, To: 30*time.Minute + 59*time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 60 || st.Candidates != 1 || st.Pruned != 59 {
		t.Fatalf("plan stats = %+v", st)
	}
	if ratio := st.SkipRatio(); ratio < 0.9 {
		t.Fatalf("skip ratio %.3f, want >= 0.9", ratio)
	}
	// Source pruning: a source no segment holds prunes everything.
	st, err = s.Explain(Query{Source: SourceWeather})
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates != 0 || st.Pruned != 60 {
		t.Fatalf("absent-source stats = %+v", st)
	}
	// Spatial pruning: X spans [0,99], so a far circle prunes everything.
	st, err = s.Explain(Query{X: 10_000, Y: 10_000, Radius: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates != 0 {
		t.Fatalf("far-circle stats = %+v", st)
	}
}

// TestAggregateZoneFastPath: a window covering whole segments aggregates
// from zone maps; the answer must match the per-row scan exactly.
func TestAggregateZoneFastPath(t *testing.T) {
	s := pruningFixture(t)
	q := Query{From: 10 * time.Minute, To: 20*time.Minute - time.Second}
	agg, stats, err := s.Aggregate(q, ColX)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Candidates != 10 {
		t.Fatalf("aggregate touched %d candidates, want 10", stats.Candidates)
	}
	recs := s.Select(q)
	if agg.Count != len(recs) || agg.Count != 600 {
		t.Fatalf("agg count %d, select %d, want 600", agg.Count, len(recs))
	}
	var sum, mn, mx float64
	for i, r := range recs {
		if i == 0 || r.X < mn {
			mn = r.X
		}
		if i == 0 || r.X > mx {
			mx = r.X
		}
		sum += r.X
	}
	if agg.Min != mn || agg.Max != mx {
		t.Fatalf("agg min/max %v/%v, want %v/%v", agg.Min, agg.Max, mn, mx)
	}
	if !closeEnough(agg.Sum, sum) || !closeEnough(agg.Mean, sum/600) {
		t.Fatalf("agg sum/mean %v/%v, want %v/%v", agg.Sum, agg.Mean, sum, sum/600)
	}
}

// TestColumnNames pins the Column <-> string mapping the CLI and HTTP
// surfaces rely on.
func TestColumnNames(t *testing.T) {
	for _, col := range []Column{ColAt, ColX, ColY, ColPayloadBytes} {
		back, ok := ParseColumn(col.String())
		if !ok || back != col {
			t.Fatalf("column %d does not round-trip (%q)", col, col.String())
		}
	}
	if _, ok := ParseColumn("bogus"); ok {
		t.Fatal("bogus column parsed")
	}
}

// TestIteratorZeroAllocs pins the per-record hot path at zero
// allocations: Next + Record over a multi-segment merge (plus the
// memtable cursor) must not touch the heap.
func TestIteratorZeroAllocs(t *testing.T) {
	s := openStore(t)
	s.SetSealPolicy(1000, time.Minute)
	for i := 0; i < 5000; i++ {
		if _, err := s.Put(rec(SourceOBD, time.Duration(i)*time.Second, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	it := s.Scan(Query{})
	var sink uint64
	allocs := testing.AllocsPerRun(3000, func() {
		if !it.Next() {
			t.Fatal("iterator ran dry mid-measurement")
		}
		sink += it.Record().ID
	})
	if allocs != 0 {
		t.Fatalf("iterator hot path allocates %.1f per record, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("no records consumed")
	}
}

// TestScanStableUnderConcurrentMutation: an iterator opened before a
// seal, a delete, and more Puts still streams its snapshot unharmed —
// cursors read only immutable columns.
func TestScanStableUnderConcurrentMutation(t *testing.T) {
	s := openStore(t)
	s.SetSealPolicy(100, time.Minute)
	for i := 0; i < 450; i++ {
		if _, err := s.Put(rec(SourceOBD, time.Duration(i)*time.Second, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	it := s.Scan(Query{})
	// Mutate hard while the iterator is mid-stream.
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteBefore(200 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := s.Put(rec(SourceGPS, time.Hour+time.Duration(i)*time.Second, 0)); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	var prevAt time.Duration = -1
	for it.Next() {
		r := it.Record()
		if r.At < prevAt {
			t.Fatalf("stream out of order at record %d", n)
		}
		prevAt = r.At
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 450 {
		t.Fatalf("snapshot streamed %d records, want 450", n)
	}
}

// TestStartCompaction: the virtual-clock schedule seals idle memtables
// and merges partition fragments; stop() cancels the schedule.
func TestStartCompaction(t *testing.T) {
	s := openStore(t)
	s.SetSealPolicy(100, time.Minute)
	for i := 0; i < 450; i++ {
		if _, err := s.Put(rec(SourceOBD, time.Duration(i)*time.Second, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// 450 rows in 1-minute partitions with 100-row seals: several
	// fragments per partition plus a 50-row memtable remainder.
	if got := len(s.Segments()); got < 5 {
		t.Fatalf("fixture sealed %d segments, want several", got)
	}
	eng := sim.NewEngine(1)
	stop, err := s.StartCompaction(eng, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// One segment per touched 1-minute partition, memtable sealed too.
	if got, want := len(s.Segments()), 8; got != want {
		t.Fatalf("segments after compaction = %d, want %d", got, want)
	}
	if got := s.Count(); got != 450 {
		t.Fatalf("count after compaction = %d, want 450", got)
	}
	stop()
	before := len(s.Segments())
	for i := 0; i < 250; i++ {
		if _, err := s.Put(rec(SourceGPS, time.Hour+time.Duration(i)*time.Second, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RunUntil(time.Hour); err != nil {
		t.Fatal(err)
	}
	// The schedule is cancelled: only Put-triggered seals may add
	// segments; nothing merges them back down.
	if got := len(s.Segments()); got < before {
		t.Fatalf("stopped schedule still compacting: %d -> %d segments", before, got)
	}
}

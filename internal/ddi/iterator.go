package ddi

import "time"

// Iterator streams a compiled plan's matching records in (At, ID) order
// without materialising a slice. The per-record hot path allocates
// nothing: Record() returns a pointer into the iterator whose payload
// aliases the decoded segment block (valid until the next Next call if
// the caller does not copy; Select copies survivors).
//
//	it := store.Scan(q)
//	for it.Next() {
//	    r := it.Record()
//	    ...
//	}
//	if err := it.Err(); err != nil { ... }
type Iterator struct {
	curs  []planCursor
	heap  []int // cursor indexes, min-keyed by (At, ID) at each idx
	rec   Record
	limit int
	sent  int
	err   error
	stats PlanStats
}

// newIterator builds the k-way merge over the plan's cursors.
func newIterator(p *plan, limit int) *Iterator {
	it := &Iterator{curs: p.curs, limit: limit, stats: p.stats}
	it.heap = make([]int, 0, len(it.curs))
	for i := range it.curs {
		if it.curs[i].idx < it.curs[i].hi {
			it.heap = append(it.heap, i)
		}
	}
	for i := len(it.heap)/2 - 1; i >= 0; i-- {
		it.siftDown(i)
	}
	return it
}

// errIterator carries a plan-compilation failure.
func errIterator(err error) *Iterator { return &Iterator{err: err} }

// less orders cursor a's current row before cursor b's.
func (it *Iterator) less(a, b int) bool {
	ca, cb := &it.curs[a], &it.curs[b]
	aa, ab := ca.cols.at[ca.idx], cb.cols.at[cb.idx]
	if aa != ab {
		return aa < ab
	}
	return ca.cols.id[ca.idx] < cb.cols.id[cb.idx]
}

func (it *Iterator) siftDown(i int) {
	h := it.heap
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && it.less(h[l], h[small]) {
			small = l
		}
		if r < len(h) && it.less(h[r], h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// fill materialises cursor c's current row into it.rec.
func (it *Iterator) fill(c *planCursor) {
	i := c.idx
	it.rec.ID = c.cols.id[i]
	it.rec.Source = c.cols.dict[c.cols.src[i]]
	it.rec.At = time.Duration(c.cols.at[i])
	it.rec.X = c.cols.x[i]
	it.rec.Y = c.cols.y[i]
	it.rec.Payload = c.cols.payload(i)
}

// Next advances to the next matching record, reporting false at the end
// of the stream (or on a compile error; see Err).
func (it *Iterator) Next() bool {
	if it.err != nil || len(it.heap) == 0 || (it.limit > 0 && it.sent >= it.limit) {
		return false
	}
	c := &it.curs[it.heap[0]]
	it.fill(c)
	it.sent++
	c.idx++
	c.seek()
	if c.idx >= c.hi {
		last := len(it.heap) - 1
		it.heap[0] = it.heap[last]
		it.heap = it.heap[:last]
	}
	if len(it.heap) > 1 {
		it.siftDown(0)
	}
	return true
}

// Record returns the current record. The pointer and its payload remain
// valid only until the next Next call; copy to retain.
func (it *Iterator) Record() *Record { return &it.rec }

// Err reports a plan-compilation failure (segment I/O or corruption).
func (it *Iterator) Err() error { return it.err }

// Stats reports what the plan pruned and scanned.
func (it *Iterator) Stats() PlanStats { return it.stats }

package ddi

import "time"

// ZoneMap summarizes one sealed segment: per-column min/max bounds, the
// set of sources present, and pre-aggregated sums. The query planner reads
// only zone maps to decide which segments a query can skip entirely — a
// pruned segment is never read from disk, let alone decoded — and the
// aggregate fast path answers count/min/max/mean for fully-covered
// segments straight from the map.
type ZoneMap struct {
	// Count is the number of records in the segment.
	Count int `json:"count"`
	// MinAt/MaxAt bound the capture-time column.
	MinAt time.Duration `json:"minAt"`
	MaxAt time.Duration `json:"maxAt"`
	// MinID/MaxID bound the record-ID column.
	MinID uint64 `json:"minId"`
	MaxID uint64 `json:"maxId"`
	// MinX/MaxX/MinY/MaxY is the spatial bounding box.
	MinX float64 `json:"minX"`
	MaxX float64 `json:"maxX"`
	MinY float64 `json:"minY"`
	MaxY float64 `json:"maxY"`
	// Sources doubles as the segment's source dictionary: the set of
	// distinct sources, in first-appearance order of the sealed rows.
	Sources []Source `json:"sources"`
	// SumX/SumY/SumAt/SumPayload pre-aggregate the columns (payload in
	// bytes), letting fully-covered aggregate queries skip the decode.
	SumX       float64 `json:"sumX"`
	SumY       float64 `json:"sumY"`
	SumAt      float64 `json:"sumAt"`
	SumPayload float64 `json:"sumPayload"`
	// MinPayload/MaxPayload bound the payload-size column.
	MinPayload int `json:"minPayload"`
	MaxPayload int `json:"maxPayload"`
}

// OverlapsWindow reports whether any record time in [MinAt, MaxAt] can
// satisfy the query window (to <= 0 means unbounded above, matching
// Query.Matches).
func (z *ZoneMap) OverlapsWindow(from, to time.Duration) bool {
	if z.MaxAt < from {
		return false
	}
	if to > 0 && z.MinAt > to {
		return false
	}
	return true
}

// HasSource reports whether the segment holds any record from s.
func (z *ZoneMap) HasSource(s Source) bool {
	for _, have := range z.Sources {
		if have == s {
			return true
		}
	}
	return false
}

// IntersectsCircle reports whether the circle at (x, y) with radius r can
// touch the segment's bounding box — the standard closest-point test.
func (z *ZoneMap) IntersectsCircle(x, y, r float64) bool {
	cx := clampF(x, z.MinX, z.MaxX)
	cy := clampF(y, z.MinY, z.MaxY)
	dx, dy := x-cx, y-cy
	return dx*dx+dy*dy <= r*r
}

// ContainsCircle reports whether the bounding box lies entirely inside the
// circle at (x, y) with radius r — when true, a spatial filter cannot
// reject any row of the segment. The farthest box corner decides.
func (z *ZoneMap) ContainsCircle(x, y, r float64) bool {
	fx := maxF(absF(x-z.MinX), absF(x-z.MaxX))
	fy := maxF(absF(y-z.MinY), absF(y-z.MaxY))
	return fx*fx+fy*fy <= r*r
}

// CoveredByWindow reports whether every record time lies inside the query
// window — when true (and any source/spatial filters also pass whole),
// aggregates can use the zone map without touching the columns.
func (z *ZoneMap) CoveredByWindow(from, to time.Duration) bool {
	if z.MinAt < from {
		return false
	}
	if to > 0 && z.MaxAt > to {
		return false
	}
	return true
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

package ddi

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"time"
)

// Write-ahead log: the durability tier in front of the memtable. Each Put
// appends one framed record to ddi.log; sealing a partition into a segment
// truncates the frames the segment now covers. The frame is
//
//	u32 body length (little-endian)
//	u32 CRC32 (IEEE) of body
//	body
//
// and the body packs one record: uvarint ID, uvarint At (ns), uvarint
// source length + source bytes, f64 X, f64 Y (LE bits), uvarint payload
// length + payload.
//
// Recovery preserves the PR 8 fail-open contract of the old JSON-lines
// log: a crash can only tear the final frame, so an incomplete frame at
// EOF is dropped and truncated away, while a complete frame whose checksum
// does not match is mid-file corruption — replay refuses to open rather
// than silently dropping durable records.

// walMaxFrame caps a frame body. A length above it cannot come from
// appendWALFrame (records are far smaller), so replay classifies it as
// corruption instead of chasing a garbage length to EOF.
const walMaxFrame = 1 << 28

// appendWALFrame appends r as one frame to dst.
func appendWALFrame(dst []byte, r *Record) []byte {
	head := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // length+CRC backfilled below
	body := len(dst)
	dst = binary.AppendUvarint(dst, r.ID)
	dst = binary.AppendUvarint(dst, uint64(r.At))
	dst = binary.AppendUvarint(dst, uint64(len(r.Source)))
	dst = append(dst, r.Source...)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.X))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Y))
	dst = binary.AppendUvarint(dst, uint64(len(r.Payload)))
	dst = append(dst, r.Payload...)
	binary.LittleEndian.PutUint32(dst[head:], uint32(len(dst)-body))
	binary.LittleEndian.PutUint32(dst[head+4:], crc32.ChecksumIEEE(dst[body:]))
	return dst
}

// decodeWALBody unpacks one frame body into r.
func decodeWALBody(body []byte, r *Record) error {
	pos := 0
	uv := func() (uint64, bool) {
		v, w := binary.Uvarint(body[pos:])
		if w <= 0 {
			return 0, false
		}
		pos += w
		return v, true
	}
	id, ok := uv()
	if !ok {
		return fmt.Errorf("truncated id")
	}
	at, ok := uv()
	if !ok {
		return fmt.Errorf("truncated timestamp")
	}
	srcLen, ok := uv()
	if !ok || pos+int(srcLen) > len(body) {
		return fmt.Errorf("truncated source")
	}
	src := body[pos : pos+int(srcLen)]
	pos += int(srcLen)
	if pos+16 > len(body) {
		return fmt.Errorf("truncated coordinates")
	}
	x := math.Float64frombits(binary.LittleEndian.Uint64(body[pos:]))
	y := math.Float64frombits(binary.LittleEndian.Uint64(body[pos+8:]))
	pos += 16
	payLen, ok := uv()
	if !ok || pos+int(payLen) != len(body) {
		return fmt.Errorf("truncated payload")
	}
	r.ID = id
	r.At = time.Duration(at)
	r.Source = Source(src)
	r.X, r.Y = x, y
	r.Payload = body[pos:]
	return nil
}

// replayWAL reads path and calls emit for every intact frame. It returns
// the offset to truncate to when the final frame is torn (-1 when the file
// is clean), and refuses with a corruption error on any complete frame
// that fails its checksum or decode.
func replayWAL(path string, emit func(r *Record)) (truncateAt int64, err error) {
	data, rerr := os.ReadFile(path)
	if os.IsNotExist(rerr) {
		return -1, nil
	}
	if rerr != nil {
		return -1, fmt.Errorf("open store log: %w", rerr)
	}
	offset := 0
	for offset < len(data) {
		rest := data[offset:]
		if len(rest) < 8 {
			return int64(offset), nil // torn header at EOF
		}
		bodyLen := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if bodyLen > walMaxFrame {
			return -1, fmt.Errorf("ddi: corrupt store log %s at offset %d: frame length %d", path, offset, bodyLen)
		}
		if len(rest) < 8+int(bodyLen) {
			return int64(offset), nil // torn body at EOF
		}
		body := rest[8 : 8+int(bodyLen)]
		if crc32.ChecksumIEEE(body) != sum {
			return -1, fmt.Errorf("ddi: corrupt store log %s at offset %d: checksum mismatch", path, offset)
		}
		var r Record
		if derr := decodeWALBody(body, &r); derr != nil {
			return -1, fmt.Errorf("ddi: corrupt store log %s at offset %d: %v", path, offset, derr)
		}
		emit(&r)
		offset += 8 + int(bodyLen)
	}
	return -1, nil
}

package ddi

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func openStore(t *testing.T) *DiskStore {
	t.Helper()
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func rec(source Source, at time.Duration, x float64) Record {
	return Record{Source: source, At: at, X: x, Payload: []byte(`{"v":1}`)}
}

func TestOpenDiskStoreValidation(t *testing.T) {
	if _, err := OpenDiskStore(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestPutAssignsMonotonicIDs(t *testing.T) {
	s := openStore(t)
	id1, err := s.Put(rec(SourceOBD, time.Second, 0))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Put(rec(SourceOBD, 2*time.Second, 0))
	if err != nil {
		t.Fatal(err)
	}
	if id2 <= id1 {
		t.Fatalf("ids not monotonic: %d then %d", id1, id2)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestPutValidates(t *testing.T) {
	s := openStore(t)
	if _, err := s.Put(Record{}); err == nil {
		t.Fatal("invalid record accepted")
	}
	if _, err := s.Put(Record{Source: SourceOBD, At: -1, Payload: []byte("x")}); err == nil {
		t.Fatal("negative timestamp accepted")
	}
}

func TestGetAndSelect(t *testing.T) {
	s := openStore(t)
	id, _ := s.Put(rec(SourceOBD, 10*time.Second, 100))
	s.Put(rec(SourceGPS, 20*time.Second, 200))
	s.Put(rec(SourceOBD, 30*time.Second, 300))

	got, ok := s.Get(id)
	if !ok || got.Source != SourceOBD {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := s.Get(999); ok {
		t.Fatal("found nonexistent record")
	}

	obd := s.Select(Query{Source: SourceOBD})
	if len(obd) != 2 {
		t.Fatalf("obd select = %d", len(obd))
	}
	window := s.Select(Query{From: 15 * time.Second, To: 25 * time.Second})
	if len(window) != 1 || window[0].Source != SourceGPS {
		t.Fatalf("window select = %v", window)
	}
	near := s.Select(Query{X: 190, Y: 0, Radius: 20})
	if len(near) != 1 || near[0].X != 200 {
		t.Fatalf("spatial select = %v", near)
	}
	limited := s.Select(Query{Limit: 2})
	if len(limited) != 2 {
		t.Fatalf("limit select = %d", len(limited))
	}
}

func TestSelectTimeOrdered(t *testing.T) {
	s := openStore(t)
	// Insert out of order.
	s.Put(rec(SourceOBD, 30*time.Second, 0))
	s.Put(rec(SourceOBD, 10*time.Second, 0))
	s.Put(rec(SourceOBD, 20*time.Second, 0))
	got := s.Select(Query{})
	if len(got) != 3 {
		t.Fatal("missing records")
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].At > got[i].At {
			t.Fatalf("results out of order: %v", got)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Put(rec(SourceOBD, time.Second, 42))
	s.Put(rec(SourceWeather, 2*time.Second, 43))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 2 {
		t.Fatalf("reopened count = %d", s2.Count())
	}
	got, ok := s2.Get(id)
	if !ok || got.X != 42 {
		t.Fatalf("record lost across reopen: %+v %v", got, ok)
	}
	// IDs keep advancing after reopen.
	id3, _ := s2.Put(rec(SourceOBD, 3*time.Second, 44))
	if id3 <= id {
		t.Fatalf("ID regressed after reopen: %d", id3)
	}
}

func TestDeleteBeforeAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		s.Put(rec(SourceOBD, time.Duration(i)*time.Second, 0))
	}
	removed, err := s.DeleteBefore(6 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 5 {
		t.Fatalf("removed = %d, want 5", removed)
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d", s.Count())
	}
	// Store still writable after compaction.
	if _, err := s.Put(rec(SourceOBD, 11*time.Second, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Compaction persisted: reopen sees only survivors.
	s2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 6 {
		t.Fatalf("reopened count = %d, want 6", s2.Count())
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	s := openStore(t)
	s.Close()
	if _, err := s.Put(rec(SourceOBD, time.Second, 0)); err == nil {
		t.Fatal("write to closed store succeeded")
	}
	if _, err := s.DeleteBefore(time.Second); err == nil {
		t.Fatal("delete on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close errored")
	}
}

// TestStoreReopenFuzz: random record batches survive close/reopen cycles
// byte for byte.
func TestStoreReopenFuzz(t *testing.T) {
	dir := t.TempDir()
	rng := sim.NewRNG(77)
	want := map[uint64]Record{}
	for cycle := 0; cycle < 5; cycle++ {
		s, err := OpenDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if s.Count() != len(want) {
			t.Fatalf("cycle %d: reopened count %d, want %d", cycle, s.Count(), len(want))
		}
		for i := 0; i < 20; i++ {
			payload := make([]byte, 1+rng.Intn(64))
			for j := range payload {
				payload[j] = byte('a' + rng.Intn(26))
			}
			r := Record{
				Source:  SourceOBD,
				At:      time.Duration(rng.Intn(100000)) * time.Millisecond,
				X:       rng.Uniform(0, 1e4),
				Payload: payload,
			}
			id, err := s.Put(r)
			if err != nil {
				t.Fatal(err)
			}
			r.ID = id
			want[id] = r
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for id, w := range want {
		got, ok := s.Get(id)
		if !ok {
			t.Fatalf("record %d lost", id)
		}
		if got.At != w.At || got.X != w.X || string(got.Payload) != string(w.Payload) {
			t.Fatalf("record %d corrupted: %+v != %+v", id, got, w)
		}
	}
}

// writeLogFixture seeds a store directory with records and then applies
// mutate to the raw log bytes, emulating what a crash or disk corruption
// leaves behind for the next open to find.
func writeLogFixture(t *testing.T, mutate func(log []byte) []byte) string {
	t.Helper()
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := s.Put(rec(SourceOBD, time.Duration(i)*time.Second, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ddi.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// walFrames splits a binary WAL into its whole frames.
func walFrames(t *testing.T, log []byte) [][]byte {
	t.Helper()
	var frames [][]byte
	for off := 0; off < len(log); {
		if len(log)-off < 8 {
			t.Fatalf("trailing %d bytes are not a frame header", len(log)-off)
		}
		n := int(binary.LittleEndian.Uint32(log[off:]))
		if off+8+n > len(log) {
			t.Fatalf("frame at %d overruns the log", off)
		}
		frames = append(frames, log[off:off+8+n])
		off += 8 + n
	}
	return frames
}

// TestLoadToleratesTornFinalLine: a crash mid-append leaves a final frame
// cut short. The store must open, keep every complete record, drop the
// torn tail, and stay appendable — the truncated tail must not glue
// itself onto the next record.
func TestLoadToleratesTornFinalLine(t *testing.T) {
	dir := writeLogFixture(t, func(log []byte) []byte {
		// Tear the last frame: keep only half its bytes.
		frames := walFrames(t, log)
		last := frames[len(frames)-1]
		torn := last[:len(last)/2]
		return append(bytes.Join(frames[:len(frames)-1], nil), torn...)
	})
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if s.Count() != 2 {
		t.Fatalf("count after torn tail = %d, want 2", s.Count())
	}
	if _, err := s.Put(rec(SourceOBD, 9*time.Second, 9)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The append after the torn tail must survive a reopen intact.
	s2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatalf("reopen after torn-tail repair: %v", err)
	}
	defer s2.Close()
	if s2.Count() != 3 {
		t.Fatalf("count after repair+append = %d, want 3", s2.Count())
	}
}

// TestLoadRejectsMidFileCorruption: the same mutation in the middle of the
// log is not a crash artifact — it means stored records are gone, and the
// store must refuse to open with the corruption offset rather than
// silently skipping the line.
func TestLoadRejectsMidFileCorruption(t *testing.T) {
	dir := writeLogFixture(t, func(log []byte) []byte {
		frames := walFrames(t, log)
		// Mangle the second of three frames' body, header intact — the
		// frame is complete, so this is corruption, not a crash artifact.
		mid := frames[1]
		for i := 8; i < 8+(len(mid)-8)/2; i++ {
			mid[i] = '#'
		}
		return bytes.Join(frames, nil)
	})
	_, err := OpenDiskStore(dir)
	if err == nil {
		t.Fatal("mid-file corruption accepted")
	}
	if !strings.Contains(err.Error(), "corrupt store log") || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("corruption error missing context: %v", err)
	}
}

// fullScanSelect is the naive reference implementation the segment
// engine must match: walk a (At, ID)-sorted shadow copy of every stored
// record, filter with Query.Matches.
func fullScanSelect(shadow []Record, q Query) []Record {
	sorted := append([]Record(nil), shadow...)
	sortRecords(sorted)
	var out []Record
	for i := range sorted {
		if !q.Matches(&sorted[i]) {
			continue
		}
		out = append(out, sorted[i])
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

func sortRecords(rs []Record) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].At != rs[j].At {
			return rs[i].At < rs[j].At
		}
		return rs[i].ID < rs[j].ID
	})
}

// TestSelectWindowSearchMatchesFullScan: the binary-searched window is a
// pure optimization — for randomized out-of-order records and every query
// shape (open/closed/empty/inverted windows, boundary-exact times,
// source+spatial filters, limits), Select returns exactly what the full
// scan did.
func TestSelectWindowSearchMatchesFullScan(t *testing.T) {
	s := openStore(t)
	// Seal aggressively so queries cross sealed segments and the memtable.
	s.SetSealPolicy(64, 2*time.Second)
	rng := sim.NewStream(17, 0)
	sources := []Source{SourceOBD, SourceGPS, SourceCamera, SourceLiDAR}
	var shadow []Record
	for i := 0; i < 400; i++ {
		// Coarse timestamps force long equal-At runs, exercising the
		// (At, ID) tiebreak at the window boundaries.
		at := time.Duration(rng.Intn(50)) * 100 * time.Millisecond
		r := rec(sources[rng.Intn(len(sources))], at, rng.Uniform(-500, 500))
		r.Y = rng.Uniform(-500, 500)
		id, err := s.Put(r)
		if err != nil {
			t.Fatal(err)
		}
		r.ID = id
		shadow = append(shadow, r)
	}
	queries := []Query{
		{},                      // everything
		{From: 0, To: 0},        // unbounded
		{From: 2 * time.Second}, // open above
		{To: 2 * time.Second},   // bounded above only
		{From: time.Second, To: 3 * time.Second},
		{From: 2500 * time.Millisecond, To: 2500 * time.Millisecond}, // single instant
		{From: 3 * time.Second, To: time.Second},                     // inverted: empty
		{From: 10 * time.Minute},                                     // past the data
		{From: time.Second, To: 4 * time.Second, Source: SourceGPS},
		{From: time.Second, To: 4 * time.Second, X: 0, Y: 0, Radius: 200},
		{From: time.Second, To: 4 * time.Second, Limit: 7},
		{Source: SourceCamera, Limit: 3},
	}
	for qi, q := range queries {
		got := s.Select(q)
		want := fullScanSelect(shadow, q)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, full scan found %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("query %d result %d: ID %d, full scan %d", qi, i, got[i].ID, want[i].ID)
			}
		}
	}
}

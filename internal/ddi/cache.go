package ddi

import (
	"container/list"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// MemCache is the in-memory tier (the paper's Redis role): bounded
// capacity, per-entry survival time in virtual time, LRU eviction. A
// record fetched from disk is promoted here; expired entries fall back to
// disk on next access.
type MemCache struct {
	capacity int
	ttl      time.Duration
	entries  map[uint64]*list.Element
	lru      *list.List // front = most recent

	hits   int
	misses int

	m   cacheMetrics
	rec *obs.Recorder
}

// cacheMetrics holds the cache's interned counter handles, resolved once
// in SetTelemetry. Handles are nil-safe, so an unattached cache bumps
// them for free — Get/Put stay off the registry lock and never re-hash a
// metric name (the interned-handle path every hot emitter uses).
type cacheMetrics struct {
	hits        *telemetry.Counter
	misses      *telemetry.Counter
	evictions   *telemetry.Counter
	expirations *telemetry.Counter
}

// SetTelemetry mirrors hit/miss/eviction outcomes into a registry under
// `ddi.cache.*` counters (nil detaches).
func (c *MemCache) SetTelemetry(reg *telemetry.Registry) {
	c.m = cacheMetrics{
		hits:        reg.CounterHandle("ddi.cache.hits"),
		misses:      reg.CounterHandle("ddi.cache.misses"),
		evictions:   reg.CounterHandle("ddi.cache.evictions"),
		expirations: reg.CounterHandle("ddi.cache.expirations"),
	}
}

// SetRecorder attaches a flight recorder: every capacity eviction emits a
// structured event stamped at the insertion that forced it (nil detaches).
func (c *MemCache) SetRecorder(rec *obs.Recorder) { c.rec = rec }

type cacheEntry struct {
	rec       Record
	expiresAt time.Duration
}

// NewMemCache builds a cache holding up to capacity records, each
// surviving ttl of virtual time after insertion (paper: "for all the data
// caches into the in-memory database, a survival time is set for it").
func NewMemCache(capacity int, ttl time.Duration) (*MemCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("ddi: cache capacity must be positive, got %d", capacity)
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("ddi: cache TTL must be positive, got %v", ttl)
	}
	return &MemCache{
		capacity: capacity,
		ttl:      ttl,
		entries:  make(map[uint64]*list.Element, capacity),
		lru:      list.New(),
	}, nil
}

// Put inserts or refreshes a record at virtual time now.
func (c *MemCache) Put(rec Record, now time.Duration) {
	if el, ok := c.entries[rec.ID]; ok {
		entry, valid := el.Value.(*cacheEntry)
		if valid {
			entry.rec = rec
			entry.expiresAt = now + c.ttl
		}
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.capacity {
		c.evictOldest(now)
	}
	el := c.lru.PushFront(&cacheEntry{rec: rec, expiresAt: now + c.ttl})
	c.entries[rec.ID] = el
}

func (c *MemCache) evictOldest(now time.Duration) {
	back := c.lru.Back()
	if back == nil {
		return
	}
	entry, ok := back.Value.(*cacheEntry)
	c.lru.Remove(back)
	if ok {
		delete(c.entries, entry.rec.ID)
		if c.rec.Enabled() {
			c.rec.Emit(now, "ddi", obs.SevDebug, "cache.evict",
				obs.Int("id", int(entry.rec.ID)), obs.Int("resident", c.lru.Len()))
		}
	}
	c.m.evictions.Inc()
}

// Get returns a live cached record, counting hit/miss statistics.
func (c *MemCache) Get(id uint64, now time.Duration) (Record, bool) {
	el, ok := c.entries[id]
	if !ok {
		c.misses++
		c.m.misses.Inc()
		return Record{}, false
	}
	entry, valid := el.Value.(*cacheEntry)
	if !valid || entry.expiresAt <= now {
		c.lru.Remove(el)
		delete(c.entries, id)
		c.misses++
		c.m.misses.Inc()
		c.m.expirations.Inc()
		return Record{}, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	c.m.hits.Inc()
	return entry.rec, true
}

// Sweep removes all expired entries at virtual time now and returns how
// many were removed. Outcomes batch: one counter bump and one obs event
// per sweep, not per record — a full-cache sweep must not flood the
// flight recorder.
func (c *MemCache) Sweep(now time.Duration) int {
	removed := 0
	for el := c.lru.Back(); el != nil; {
		prev := el.Prev()
		if entry, ok := el.Value.(*cacheEntry); ok && entry.expiresAt <= now {
			c.lru.Remove(el)
			delete(c.entries, entry.rec.ID)
			removed++
		}
		el = prev
	}
	if removed > 0 {
		c.m.expirations.Add(float64(removed))
		if c.rec.Enabled() {
			c.rec.Emit(now, "ddi", obs.SevDebug, "cache.sweep",
				obs.Int("removed", removed), obs.Int("resident", c.lru.Len()))
		}
	}
	return removed
}

// Len returns the number of cached entries (including not-yet-swept
// expired ones).
func (c *MemCache) Len() int { return c.lru.Len() }

// Stats returns cumulative hits and misses.
func (c *MemCache) Stats() (hits, misses int) { return c.hits, c.misses }

// HitRate returns hits / (hits + misses), or 0 before any access.
func (c *MemCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

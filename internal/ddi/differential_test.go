package ddi

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// buildCorpus fills s with n randomized records (seeded via sim.NewStream
// so runs are reproducible) and returns the shadow copy the reference
// scan works from.
func buildCorpus(t *testing.T, s *DiskStore, n int, seed int64) []Record {
	t.Helper()
	rng := sim.NewStream(seed, 3)
	sources := []Source{SourceOBD, SourceGPS, SourceCamera, SourceLiDAR, SourceWeather}
	shadow := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		payload := make([]byte, 8+rng.Intn(40))
		for j := range payload {
			payload[j] = byte('a' + rng.Intn(26))
		}
		r := Record{
			Source:  sources[rng.Intn(len(sources))],
			At:      time.Duration(rng.Intn(3600)) * time.Second,
			X:       rng.Uniform(-1000, 1000),
			Y:       rng.Uniform(-1000, 1000),
			Payload: payload,
		}
		id, err := s.Put(r)
		if err != nil {
			t.Fatal(err)
		}
		r.ID = id
		shadow = append(shadow, r)
	}
	return shadow
}

// differentialQueries is the query-shape matrix both engines must agree
// on: every window form (open, closed, empty, inverted, instant, out of
// range), source and spatial filters alone and combined, and limits.
func differentialQueries() []Query {
	return []Query{
		{}, // everything
		{From: 10 * time.Minute, To: 11 * time.Minute},             // narrow window
		{From: 5 * time.Minute, To: 50 * time.Minute},              // wide window
		{From: 30 * time.Minute},                                   // open above
		{To: 30 * time.Minute},                                     // bounded above only
		{From: 600 * time.Second, To: 600 * time.Second},           // single instant
		{From: 20 * time.Minute, To: 10 * time.Minute},             // inverted: empty
		{From: 2 * time.Hour},                                      // past the data
		{Source: SourceGPS},                                        // source only
		{Source: SourceLiDAR, From: 10 * time.Minute, To: 40 * time.Minute},
		{Source: SourceSocial},                                     // source never stored
		{X: 0, Y: 0, Radius: 300},                                  // spatial only
		{X: 250, Y: -250, Radius: 150, Source: SourceOBD, From: 5 * time.Minute, To: 45 * time.Minute},
		{Limit: 37},                                                // limit only
		{From: 10 * time.Minute, To: 30 * time.Minute, Limit: 11},  // window + limit
	}
}

// refAggregate is the naive aggregate the zone-map fast path must match.
func refAggregate(shadow []Record, q Query, col Column) Agg {
	var a Agg
	for i := range shadow {
		if !q.Matches(&shadow[i]) {
			continue
		}
		var v float64
		switch col {
		case ColAt:
			v = float64(shadow[i].At)
		case ColX:
			v = shadow[i].X
		case ColY:
			v = shadow[i].Y
		default:
			v = float64(len(shadow[i].Payload))
		}
		if a.Count == 0 || v < a.Min {
			a.Min = v
		}
		if a.Count == 0 || v > a.Max {
			a.Max = v
		}
		a.Sum += v
		a.Count++
	}
	if a.Count > 0 {
		a.Mean = a.Sum / float64(a.Count)
	}
	return a
}

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if aa := a; aa < 0 {
		aa = -aa
		if aa > scale {
			scale = aa
		}
	} else if a > scale {
		scale = a
	}
	return d <= 1e-9*scale
}

// TestDifferentialQueryShapes pins the segment engine byte-identical to
// the naive reference scan across the full query-shape matrix and two
// randomized corpora, through seals, a compaction, and a reopen.
func TestDifferentialQueryShapes(t *testing.T) {
	n := 100_000
	if testing.Short() {
		n = 20_000
	}
	for _, seed := range []int64{101, 202} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			// Small seals over 5-minute partitions: the corpus spans an
			// hour, so every seal fans out across many partitions and
			// partitions accumulate several segments for Compact to merge.
			s.SetSealPolicy(8192, 5*time.Minute)
			shadow := buildCorpus(t, s, n, seed)

			check := func(stage string) {
				t.Helper()
				for qi, q := range differentialQueries() {
					got := s.Select(q)
					want := fullScanSelect(shadow, q)
					if len(got) != len(want) {
						t.Fatalf("%s query %d: %d results, reference found %d", stage, qi, len(got), len(want))
					}
					for i := range got {
						if !reflect.DeepEqual(got[i], want[i]) {
							t.Fatalf("%s query %d result %d:\n  got  %+v\n  want %+v", stage, qi, i, got[i], want[i])
						}
					}
					if q.Limit != 0 {
						continue // aggregates ignore Limit by contract
					}
					for _, col := range []Column{ColAt, ColX, ColY, ColPayloadBytes} {
						ga, _, err := s.Aggregate(q, col)
						if err != nil {
							t.Fatal(err)
						}
						wa := refAggregate(shadow, q, col)
						if ga.Count != wa.Count || ga.Min != wa.Min || ga.Max != wa.Max ||
							!closeEnough(ga.Sum, wa.Sum) || !closeEnough(ga.Mean, wa.Mean) {
							t.Fatalf("%s query %d agg %v:\n  got  %+v\n  want %+v", stage, qi, col, ga, wa)
						}
					}
				}
			}

			check("mixed memtable+segments")
			if _, err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			check("after compaction")
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s, err = OpenDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			check("after reopen")
		})
	}
}

// TestDifferentialDeleteBefore pins DeleteBefore against the reference:
// whole-partition drops, a straddling-segment rewrite, and the memtable
// filter all leave exactly the surviving records.
func TestDifferentialDeleteBefore(t *testing.T) {
	s := openStore(t)
	s.SetSealPolicy(1024, 5*time.Minute)
	shadow := buildCorpus(t, s, 10_000, 404)

	cut := 27 * time.Minute
	removed, err := s.DeleteBefore(cut)
	if err != nil {
		t.Fatal(err)
	}
	var keep []Record
	for _, r := range shadow {
		if r.At >= cut {
			keep = append(keep, r)
		}
	}
	if want := len(shadow) - len(keep); removed != want {
		t.Fatalf("removed %d, want %d", removed, want)
	}
	got := s.Select(Query{})
	want := fullScanSelect(keep, Query{})
	if len(got) != len(want) {
		t.Fatalf("%d survivors, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("survivor %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

package ddi

import (
	"testing"
	"time"
)

func TestNewMemCacheValidation(t *testing.T) {
	if _, err := NewMemCache(0, time.Second); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewMemCache(10, 0); err == nil {
		t.Fatal("zero TTL accepted")
	}
}

func cached(id uint64) Record {
	return Record{ID: id, Source: SourceOBD, Payload: []byte("x")}
}

func TestCachePutGet(t *testing.T) {
	c, _ := NewMemCache(10, time.Minute)
	c.Put(cached(1), 0)
	got, ok := c.Get(1, 30*time.Second)
	if !ok || got.ID != 1 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := c.Get(2, 0); ok {
		t.Fatal("found missing entry")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c, _ := NewMemCache(10, time.Minute)
	c.Put(cached(1), 0)
	if _, ok := c.Get(1, 59*time.Second); !ok {
		t.Fatal("entry expired early")
	}
	if _, ok := c.Get(1, 61*time.Second); ok {
		t.Fatal("entry survived past TTL")
	}
	// Re-putting refreshes the TTL.
	c.Put(cached(1), 2*time.Minute)
	if _, ok := c.Get(1, 2*time.Minute+59*time.Second); !ok {
		t.Fatal("refreshed entry expired early")
	}
}

func TestCacheRefreshOnReput(t *testing.T) {
	c, _ := NewMemCache(10, time.Minute)
	c.Put(cached(1), 0)
	c.Put(cached(1), 30*time.Second) // refresh
	if _, ok := c.Get(1, 80*time.Second); !ok {
		t.Fatal("re-put did not refresh TTL")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after re-put", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _ := NewMemCache(3, time.Hour)
	c.Put(cached(1), 0)
	c.Put(cached(2), 0)
	c.Put(cached(3), 0)
	c.Get(1, 0) // 1 is now most recent; 2 is oldest
	c.Put(cached(4), 0)
	if _, ok := c.Get(2, 0); ok {
		t.Fatal("LRU entry survived eviction")
	}
	for _, id := range []uint64{1, 3, 4} {
		if _, ok := c.Get(id, 0); !ok {
			t.Fatalf("entry %d wrongly evicted", id)
		}
	}
}

func TestCacheSweep(t *testing.T) {
	c, _ := NewMemCache(10, time.Minute)
	for i := uint64(1); i <= 5; i++ {
		c.Put(cached(i), 0)
	}
	c.Put(cached(6), 2*time.Minute)
	removed := c.Sweep(90 * time.Second)
	if removed != 5 {
		t.Fatalf("swept %d, want 5", removed)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after sweep", c.Len())
	}
}

func TestCacheHitRateEmptyIsZero(t *testing.T) {
	c, _ := NewMemCache(10, time.Minute)
	if c.HitRate() != 0 {
		t.Fatal("hit rate of untouched cache != 0")
	}
}

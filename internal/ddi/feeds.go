package ddi

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// WeatherReport is the external weather context DDI collects.
type WeatherReport struct {
	At         time.Duration `json:"at"`
	TempC      float64       `json:"tempC"`
	Condition  string        `json:"condition"`
	WindKPH    float64       `json:"windKph"`
	Visibility float64       `json:"visibilityKm"`
}

// TrafficReport is the road-condition context.
type TrafficReport struct {
	At         time.Duration `json:"at"`
	Congestion float64       `json:"congestion"` // 0 free-flow .. 1 jammed
	Incidents  int           `json:"incidents"`
	AvgSpeed   float64       `json:"avgSpeedKph"`
}

// SocialEvent is a nearby emergency or notable event from social feeds.
type SocialEvent struct {
	At       time.Duration `json:"at"`
	Kind     string        `json:"kind"`
	Severity int           `json:"severity"` // 1..5
	X        float64       `json:"x"`
	Y        float64       `json:"y"`
}

// Feeds synthesizes the three external context sources (the paper's
// "vehicle-specific APIs" — offline here, so generated with realistic
// temporal structure: weather drifts, traffic follows a daily-ish cycle,
// social events arrive as a Poisson process).
type Feeds struct {
	rng       *sim.RNG
	temp      float64
	nextEvent time.Duration
}

// NewFeeds builds the generator.
func NewFeeds(rng *sim.RNG) (*Feeds, error) {
	if rng == nil {
		return nil, fmt.Errorf("ddi: nil RNG")
	}
	f := &Feeds{rng: rng, temp: 18}
	f.nextEvent = time.Duration(rng.Exponential(float64(10 * time.Minute)))
	return f, nil
}

// Weather samples the drifting weather state.
func (f *Feeds) Weather(now time.Duration) WeatherReport {
	f.temp += f.rng.Normal(0, 0.15)
	if f.temp < -25 {
		f.temp = -25
	}
	if f.temp > 42 {
		f.temp = 42
	}
	cond := "clear"
	switch {
	case f.temp < 0 && f.rng.Bernoulli(0.3):
		cond = "snow"
	case f.rng.Bernoulli(0.15):
		cond = "rain"
	case f.rng.Bernoulli(0.2):
		cond = "cloudy"
	}
	vis := 12.0
	if cond == "snow" || cond == "rain" {
		vis = f.rng.Uniform(0.5, 6)
	}
	return WeatherReport{
		At: now, TempC: f.temp, Condition: cond,
		WindKPH: f.rng.Uniform(0, 40), Visibility: vis,
	}
}

// Traffic samples congestion with a slow 2-hour cycle plus noise.
func (f *Feeds) Traffic(now time.Duration) TrafficReport {
	phase := float64(now%(2*time.Hour)) / float64(2*time.Hour)
	base := 0.5 - 0.4*cosApprox(phase)
	cong := clamp01(base + f.rng.Normal(0, 0.08))
	incidents := 0
	if f.rng.Bernoulli(cong * 0.2) {
		incidents = 1 + f.rng.Intn(2)
	}
	return TrafficReport{
		At: now, Congestion: cong, Incidents: incidents,
		AvgSpeed: 100 * (1 - cong),
	}
}

// Social returns any events that fired since the previous call.
func (f *Feeds) Social(now time.Duration) []SocialEvent {
	kinds := []string{"accident", "road-closure", "amber-alert", "severe-weather-warning", "parade"}
	var out []SocialEvent
	for f.nextEvent <= now {
		out = append(out, SocialEvent{
			At:       f.nextEvent,
			Kind:     kinds[f.rng.Intn(len(kinds))],
			Severity: 1 + f.rng.Intn(5),
			X:        f.rng.Uniform(0, 10000),
			Y:        f.rng.Uniform(-50, 50),
		})
		f.nextEvent += time.Duration(f.rng.Exponential(float64(10 * time.Minute)))
	}
	return out
}

// MarshalPayload JSON-encodes any feed datum for storage.
func MarshalPayload(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("ddi: marshal payload: %w", err)
	}
	return b, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// cosApprox returns cos(2*pi*x), shaping the traffic cycle.
func cosApprox(x float64) float64 {
	return math.Cos(2 * math.Pi * x)
}

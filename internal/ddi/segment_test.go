package ddi

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// sealedFixture builds a store with its records sealed into segments and
// returns the dir, the store, and the segment file paths.
func sealedFixture(t *testing.T, n int) (string, *DiskStore, []string) {
	t.Helper()
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	s.SetSealPolicy(0, time.Minute)
	for i := 0; i < n; i++ {
		r := rec(SourceOBD, time.Duration(i)*time.Second, float64(i))
		if i%3 == 0 {
			r.Source = SourceGPS
		}
		if _, err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*"+segSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments sealed: %v %v", matches, err)
	}
	return dir, s, matches
}

// TestSegmentRoundTrip: sealed columns decode back byte-identical.
func TestSegmentRoundTrip(t *testing.T) {
	_, s, paths := sealedFixture(t, 500)
	total := 0
	for _, p := range paths {
		cols, err := readSegmentFile(p)
		if err != nil {
			t.Fatal(err)
		}
		total += cols.rows()
		for i := 0; i < cols.rows(); i++ {
			id := cols.id[i]
			want, ok := s.Get(id)
			if !ok {
				t.Fatalf("record %d missing from store", id)
			}
			if int64(want.At) != cols.at[i] || want.X != cols.x[i] ||
				want.Source != cols.dict[cols.src[i]] ||
				string(want.Payload) != string(cols.payload(i)) {
				t.Fatalf("row %d of %s decodes wrong", i, p)
			}
		}
	}
	if total != 500 {
		t.Fatalf("segments hold %d rows, want 500", total)
	}
}

// TestOpenRemovesStraySealTmp: a crash mid-seal leaves a half-written
// .tmp segment; the next open must sweep it and recover every record
// from the WAL.
func TestOpenRemovesStraySealTmp(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Put(rec(SourceOBD, time.Duration(i)*time.Second, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, segName(7)+".tmp")
	if err := os.WriteFile(stray, []byte("half-written seal"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatalf("stray tmp blocked open: %v", err)
	}
	defer s2.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray .tmp survived open")
	}
	if s2.Count() != 10 {
		t.Fatalf("count = %d, want 10", s2.Count())
	}
}

// TestSealCrashWALReplayDedupes: a crash between segment publish and WAL
// truncation leaves sealed records still in the log. Replay must skip
// them — the segment is authoritative — instead of doubling the store.
func TestSealCrashWALReplayDedupes(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Put(rec(SourceOBD, time.Duration(i)*time.Second, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "ddi.log")
	saved, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the pre-seal WAL, as if truncation never happened.
	if err := os.WriteFile(walPath, saved, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 10 {
		t.Fatalf("count after replay = %d, want 10 (sealed records doubled?)", s2.Count())
	}
	// IDs must keep advancing past the sealed ones.
	id, err := s2.Put(rec(SourceOBD, time.Minute, 1))
	if err != nil {
		t.Fatal(err)
	}
	if id != 11 {
		t.Fatalf("next ID = %d, want 11", id)
	}
}

// TestCorruptSegmentTrailerRefusesOpen: open validates every segment's
// framed trailer; damage there is real corruption (publish is atomic via
// tmp+rename) and must refuse the open with context, mirroring the WAL's
// mid-file contract.
func TestCorruptSegmentTrailerRefusesOpen(t *testing.T) {
	_, s, paths := sealedFixture(t, 100)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip bytes just ahead of the 12-byte tail frame: inside the trailer.
	for i := len(raw) - 40; i < len(raw)-12; i++ {
		raw[i] ^= 0xff
	}
	if err := os.WriteFile(paths[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDiskStore(filepath.Dir(paths[0]))
	if err == nil {
		t.Fatal("corrupt segment accepted")
	}
	if !strings.Contains(err.Error(), "corrupt segment") {
		t.Fatalf("corruption error missing context: %v", err)
	}
}

// TestCorruptSegmentColumnSurfacesAtScan: column blocks validate lazily —
// damage inside one leaves the open cheap (trailer intact) but the first
// query that decodes the segment must fail its block CRC loudly.
func TestCorruptSegmentColumnSurfacesAtScan(t *testing.T) {
	_, s, paths := sealedFixture(t, 100)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := len(segHeadMagic); i < len(segHeadMagic)+16; i++ {
		raw[i] ^= 0xff
	}
	if err := os.WriteFile(paths[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDiskStore(filepath.Dir(paths[0]))
	if err != nil {
		t.Fatalf("trailer-valid segment blocked open: %v", err)
	}
	defer s2.Close()
	it := s2.Scan(Query{})
	for it.Next() {
	}
	if it.Err() == nil || !strings.Contains(it.Err().Error(), "corrupt segment") {
		t.Fatalf("column corruption not surfaced: %v", it.Err())
	}
}

// TestTornSegmentTailRefusesOpen: a segment cut short (torn tail) cannot
// be a crash artifact either — rename is atomic — so open refuses.
func TestTornSegmentTailRefusesOpen(t *testing.T) {
	_, s, paths := sealedFixture(t, 100)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDiskStore(filepath.Dir(paths[0]))
	if err == nil {
		t.Fatal("torn segment accepted")
	}
	if !strings.Contains(err.Error(), "corrupt segment") {
		t.Fatalf("torn-tail error missing context: %v", err)
	}
}

// TestLazySegmentDecode: pruned segments must never read their files —
// deleting the file out from under a fully-pruned query must not break
// it, while a query that needs the segment fails loudly.
func TestLazySegmentDecode(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetSealPolicy(0, time.Minute)
	for i := 0; i < 100; i++ {
		if _, err := s.Put(rec(SourceOBD, time.Duration(i)*time.Second, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	// Reopen so columns are not resident, then remove the files.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "seg-*"+segSuffix))
	for _, p := range paths {
		os.Remove(p)
	}
	// Fully pruned: window far past the data — zone maps answer alone.
	if got := s.Select(Query{From: time.Hour}); len(got) != 0 {
		t.Fatalf("pruned query returned %d records", len(got))
	}
	// Not pruned: the plan must surface the read failure via Err.
	it := s.Scan(Query{})
	for it.Next() {
	}
	if it.Err() == nil {
		t.Fatal("missing segment file did not surface an error")
	}
}

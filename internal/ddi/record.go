// Package ddi implements OpenVDAP's Driving Data Integrator (paper §IV-D):
// a collector layer for vehicle telemetry and external context (weather,
// traffic, social events), a two-tier database (in-memory TTL cache over a
// persistent disk store, standing in for Redis over MySQL), and a service
// layer with upload/download requests keyed by time and location.
package ddi

import (
	"fmt"
	"time"
)

// Source identifies where a record came from.
type Source string

// Collector sources (paper Figure 7's four data aspects, expanded).
const (
	SourceOBD     Source = "obd"
	SourceGPS     Source = "gps"
	SourceCamera  Source = "camera"
	SourceLiDAR   Source = "lidar"
	SourceWeather Source = "weather"
	SourceTraffic Source = "traffic"
	SourceSocial  Source = "social"
	SourceUser    Source = "user" // upload requests from applications
)

// Record is one stored datum. All records carry location and timestamp
// (paper: "all the related data includes location and timestamp").
type Record struct {
	// ID is assigned by the store on insert (monotonic).
	ID uint64 `json:"id"`
	// Source classifies the record.
	Source Source `json:"source"`
	// At is the virtual capture time.
	At time.Duration `json:"at"`
	// X, Y locate the vehicle at capture time.
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Payload is the serialized datum (JSON from the collectors).
	Payload []byte `json:"payload"`
}

// Validate reports structural errors.
func (r *Record) Validate() error {
	if r.Source == "" {
		return fmt.Errorf("ddi: record has no source")
	}
	if r.At < 0 {
		return fmt.Errorf("ddi: record has negative timestamp")
	}
	if len(r.Payload) == 0 {
		return fmt.Errorf("ddi: record has empty payload")
	}
	return nil
}

// SizeBytes approximates the record's storage footprint.
func (r *Record) SizeBytes() int { return len(r.Payload) + 48 }

// Query selects records by source, time window, and optional spatial box.
type Query struct {
	// Source filters by collector; empty matches all.
	Source Source
	// From and To bound the capture time (inclusive).
	From time.Duration
	To   time.Duration
	// Near, when Radius > 0, keeps records within Radius meters of (X, Y).
	X, Y, Radius float64
	// Limit bounds result count; 0 means unlimited.
	Limit int
}

// Matches reports whether a record satisfies the query.
func (q Query) Matches(r *Record) bool {
	if q.Source != "" && r.Source != q.Source {
		return false
	}
	if r.At < q.From || (q.To > 0 && r.At > q.To) {
		return false
	}
	if q.Radius > 0 {
		dx, dy := r.X-q.X, r.Y-q.Y
		if dx*dx+dy*dy > q.Radius*q.Radius {
			return false
		}
	}
	return true
}

package ddi

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/huffman"
)

// Segment file format (seg-NNNNNNNN.vseg): an immutable, columnar,
// time-partitioned run of records sorted by (At, ID).
//
//	"VSEG1\n"                      6-byte head magic
//	column blocks, back to back    per-column compression, see below
//	trailer JSON                   zone map + block directory
//	u32 trailer length             little-endian
//	u32 trailer CRC32 (IEEE)
//	"VSGF"                         4-byte tail magic
//
// Column encodings: At is delta+uvarint (sorted, so deltas are
// non-negative), ID is zigzag-delta+uvarint, Source is RLE over the zone
// map's dictionary, X/Y are raw little-endian float64, payload lengths are
// uvarint, and the payload blob is one huffman block (with a stored
// fallback when entropy coding does not pay). Segments are written to a
// .tmp file and renamed into place, so a crash during seal leaves either
// no segment or a whole one; any file that fails validation is mid-file
// corruption and refuses the open, mirroring the WAL contract.

const (
	segHeadMagic = "VSEG1\n"
	segTailMagic = "VSGF"
	segSuffix    = ".vseg"
)

// segment block names, fixed order in the file.
const (
	blkAt   = "at"
	blkID   = "id"
	blkSrc  = "src"
	blkX    = "x"
	blkY    = "y"
	blkPLen = "plen"
	blkPay  = "pay"
)

// segBlock locates one encoded column inside the segment file.
type segBlock struct {
	Name string `json:"name"`
	// Off/Len bound the encoded bytes (Off is relative to file start).
	Off int64 `json:"off"`
	Len int64 `json:"len"`
	// Enc names the encoding: delta, zigzag, rle, f64, uvarint, huff, raw.
	Enc string `json:"enc"`
	// CRC covers the encoded bytes.
	CRC uint32 `json:"crc"`
}

// segTrailer is the JSON footer: the zone map plus the block directory.
type segTrailer struct {
	Zone   ZoneMap    `json:"zone"`
	Blocks []segBlock `json:"blocks"`
}

// segCols holds a segment's decoded columns. Rows are sorted by (At, ID).
// The struct is immutable once published; payloads are subslices of pay.
type segCols struct {
	id     []uint64
	at     []int64 // nanoseconds
	src    []uint8 // index into dict
	dict   []Source
	x, y   []float64
	payOff []uint32 // len(id)+1 offsets into pay
	pay    []byte
	// idSorted is true when the id column is monotonically increasing
	// (in-order ingest), enabling binary-searched point lookups.
	idSorted bool
}

func (c *segCols) rows() int { return len(c.id) }

// payload returns row i's payload view.
func (c *segCols) payload(i int) []byte { return c.pay[c.payOff[i]:c.payOff[i+1]] }

// buildZoneMap computes the zone map over the columns.
func (c *segCols) buildZoneMap() ZoneMap {
	z := ZoneMap{Count: len(c.id)}
	if len(c.id) == 0 {
		return z
	}
	z.MinAt, z.MaxAt = time.Duration(c.at[0]), time.Duration(c.at[len(c.at)-1])
	z.MinID, z.MaxID = c.id[0], c.id[0]
	z.MinX, z.MaxX = c.x[0], c.x[0]
	z.MinY, z.MaxY = c.y[0], c.y[0]
	z.MinPayload = int(c.payOff[1] - c.payOff[0])
	z.MaxPayload = z.MinPayload
	z.Sources = append([]Source(nil), c.dict...)
	for i := 0; i < len(c.id); i++ {
		if c.id[i] < z.MinID {
			z.MinID = c.id[i]
		}
		if c.id[i] > z.MaxID {
			z.MaxID = c.id[i]
		}
		if c.x[i] < z.MinX {
			z.MinX = c.x[i]
		}
		if c.x[i] > z.MaxX {
			z.MaxX = c.x[i]
		}
		if c.y[i] < z.MinY {
			z.MinY = c.y[i]
		}
		if c.y[i] > z.MaxY {
			z.MaxY = c.y[i]
		}
		p := int(c.payOff[i+1] - c.payOff[i])
		if p < z.MinPayload {
			z.MinPayload = p
		}
		if p > z.MaxPayload {
			z.MaxPayload = p
		}
		z.SumX += c.x[i]
		z.SumY += c.y[i]
		z.SumAt += float64(c.at[i])
		z.SumPayload += float64(p)
	}
	return z
}

// segment is one immutable on-disk run. Columns decode lazily on first
// touch (under sync.Once, safe for concurrent readers); a pruned segment
// never reads its file.
type segment struct {
	path string
	seq  uint64
	zm   ZoneMap

	once sync.Once
	cols *segCols
	err  error

	// idIdx is a lazily built permutation of rows sorted by ID, for point
	// lookups when the id column is not already sorted.
	idOnce sync.Once
	idIdx  []uint32
}

// load decodes the segment's columns, reading the file on first use.
func (s *segment) load() (*segCols, error) {
	s.once.Do(func() {
		if s.cols != nil {
			return
		}
		s.cols, s.err = readSegmentFile(s.path)
	})
	return s.cols, s.err
}

// findID returns the row holding id, or -1.
func (s *segment) findID(id uint64) int {
	cols, err := s.load()
	if err != nil {
		return -1
	}
	if cols.idSorted {
		i := sort.Search(len(cols.id), func(i int) bool { return cols.id[i] >= id })
		if i < len(cols.id) && cols.id[i] == id {
			return i
		}
		return -1
	}
	s.idOnce.Do(func() {
		s.idIdx = make([]uint32, len(cols.id))
		for i := range s.idIdx {
			s.idIdx[i] = uint32(i)
		}
		sort.Slice(s.idIdx, func(a, b int) bool { return cols.id[s.idIdx[a]] < cols.id[s.idIdx[b]] })
	})
	i := sort.Search(len(s.idIdx), func(i int) bool { return cols.id[s.idIdx[i]] >= id })
	if i < len(s.idIdx) && cols.id[s.idIdx[i]] == id {
		return int(s.idIdx[i])
	}
	return -1
}

// ---------------------------------------------------------------------------
// encoding

// appendUvarint appends v as a varint.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// zigzag maps signed deltas onto unsigned varint space.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodeSegment renders cols into the segment wire format.
func encodeSegment(cols *segCols) ([]byte, error) {
	n := cols.rows()
	if n == 0 {
		return nil, fmt.Errorf("ddi: refusing to seal an empty segment")
	}
	out := make([]byte, 0, 64+n*12+len(cols.pay)/2)
	out = append(out, segHeadMagic...)

	tr := segTrailer{Zone: cols.buildZoneMap()}
	block := func(name, enc string, body []byte) {
		tr.Blocks = append(tr.Blocks, segBlock{
			Name: name, Off: int64(len(out)), Len: int64(len(body)),
			Enc: enc, CRC: crc32.ChecksumIEEE(body),
		})
		out = append(out, body...)
	}

	var buf []byte
	// At: delta+uvarint over the sorted column.
	buf = appendUvarint(buf[:0], uint64(cols.at[0]))
	for i := 1; i < n; i++ {
		buf = appendUvarint(buf, uint64(cols.at[i]-cols.at[i-1]))
	}
	block(blkAt, "delta", buf)
	// ID: zigzag-delta+uvarint (not monotonic under out-of-order ingest).
	buf = appendUvarint(buf[:0], cols.id[0])
	for i := 1; i < n; i++ {
		buf = appendUvarint(buf, zigzag(int64(cols.id[i])-int64(cols.id[i-1])))
	}
	block(blkID, "zigzag", buf)
	// Source: RLE (dictIdx, runLen) pairs.
	buf = buf[:0]
	for i := 0; i < n; {
		j := i + 1
		for j < n && cols.src[j] == cols.src[i] {
			j++
		}
		buf = appendUvarint(buf, uint64(cols.src[i]))
		buf = appendUvarint(buf, uint64(j-i))
		i = j
	}
	block(blkSrc, "rle", buf)
	// X/Y: raw f64 little-endian.
	buf = buf[:0]
	for _, v := range cols.x {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	block(blkX, "f64", buf)
	buf = buf[:0]
	for _, v := range cols.y {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	block(blkY, "f64", buf)
	// Payload lengths: uvarint.
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = appendUvarint(buf, uint64(cols.payOff[i+1]-cols.payOff[i]))
	}
	block(blkPLen, "uvarint", buf)
	// Payload blob: huffman unless entropy coding loses.
	if len(cols.pay) > 0 {
		enc, err := huffman.AppendEncode(buf[:0], cols.pay)
		if err == nil && len(enc) < len(cols.pay) {
			block(blkPay, "huff", enc)
		} else {
			block(blkPay, "raw", cols.pay)
		}
	} else {
		block(blkPay, "raw", nil)
	}

	trailer, err := json.Marshal(&tr)
	if err != nil {
		return nil, fmt.Errorf("ddi: marshal segment trailer: %w", err)
	}
	out = append(out, trailer...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(trailer)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(trailer))
	out = append(out, segTailMagic...)
	return out, nil
}

// writeSegmentFile seals cols as dir/seg-NNNNNNNN.vseg via tmp+rename and
// returns the in-memory segment (columns already resident — a segment
// sealed this session never re-reads its own file).
func writeSegmentFile(dir string, seq uint64, cols *segCols) (*segment, error) {
	data, err := encodeSegment(cols)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, segName(seq))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return nil, fmt.Errorf("ddi: write segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("ddi: publish segment: %w", err)
	}
	seg := &segment{path: path, seq: seq, zm: cols.buildZoneMap(), cols: cols}
	seg.once.Do(func() {}) // columns are resident; disarm lazy load
	return seg, nil
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%08d%s", seq, segSuffix) }

// parseSegSeq extracts NNNNNNNN from seg-NNNNNNNN.vseg, or false.
func parseSegSeq(name string) (uint64, bool) {
	if len(name) != len("seg-00000000")+len(segSuffix) ||
		name[:4] != "seg-" || name[len(name)-len(segSuffix):] != segSuffix {
		return 0, false
	}
	var seq uint64
	for _, c := range name[4 : len(name)-len(segSuffix)] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// readSegmentTrailer validates the file frame and returns the trailer
// without decoding any column.
func readSegmentTrailer(path string) (*segTrailer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ddi: read segment %s: %w", path, err)
	}
	tr, _, err := parseSegment(data, path)
	return tr, err
}

// parseSegment validates framing and returns the trailer plus the raw
// bytes for block decoding.
func parseSegment(data []byte, path string) (*segTrailer, []byte, error) {
	tail := len(segTailMagic) + 8
	if len(data) < len(segHeadMagic)+tail || string(data[:len(segHeadMagic)]) != segHeadMagic {
		return nil, nil, fmt.Errorf("ddi: corrupt segment %s: bad frame", path)
	}
	if string(data[len(data)-len(segTailMagic):]) != segTailMagic {
		return nil, nil, fmt.Errorf("ddi: corrupt segment %s: torn or missing tail", path)
	}
	trLen := binary.LittleEndian.Uint32(data[len(data)-tail:])
	trCRC := binary.LittleEndian.Uint32(data[len(data)-tail+4:])
	trEnd := len(data) - tail
	if int(trLen) > trEnd-len(segHeadMagic) {
		return nil, nil, fmt.Errorf("ddi: corrupt segment %s: trailer length %d", path, trLen)
	}
	trailer := data[trEnd-int(trLen) : trEnd]
	if crc32.ChecksumIEEE(trailer) != trCRC {
		return nil, nil, fmt.Errorf("ddi: corrupt segment %s: trailer checksum mismatch", path)
	}
	var tr segTrailer
	if err := json.Unmarshal(trailer, &tr); err != nil {
		return nil, nil, fmt.Errorf("ddi: corrupt segment %s: %w", path, err)
	}
	return &tr, data, nil
}

// readSegmentFile reads and fully decodes a segment's columns.
func readSegmentFile(path string) (*segCols, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ddi: read segment %s: %w", path, err)
	}
	tr, raw, err := parseSegment(data, path)
	if err != nil {
		return nil, err
	}
	return decodeSegment(tr, raw, path)
}

// decodeSegment reverses encodeSegment.
func decodeSegment(tr *segTrailer, data []byte, path string) (*segCols, error) {
	n := tr.Zone.Count
	cols := &segCols{
		id: make([]uint64, n), at: make([]int64, n), src: make([]uint8, n),
		x: make([]float64, n), y: make([]float64, n),
		payOff: make([]uint32, n+1),
		dict:   append([]Source(nil), tr.Zone.Sources...),
	}
	corrupt := func(block string, why string) error {
		return fmt.Errorf("ddi: corrupt segment %s: block %s: %s", path, block, why)
	}
	body := func(b segBlock) ([]byte, error) {
		if b.Off < int64(len(segHeadMagic)) || b.Off+b.Len > int64(len(data)) {
			return nil, corrupt(b.Name, "out of bounds")
		}
		blk := data[b.Off : b.Off+b.Len]
		if crc32.ChecksumIEEE(blk) != b.CRC {
			return nil, corrupt(b.Name, "checksum mismatch")
		}
		return blk, nil
	}
	readVarints := func(name string, blk []byte, out func(i int, v uint64) error) error {
		pos := 0
		for i := 0; i < n; i++ {
			v, w := binary.Uvarint(blk[pos:])
			if w <= 0 {
				return corrupt(name, "truncated varint")
			}
			pos += w
			if err := out(i, v); err != nil {
				return err
			}
		}
		return nil
	}
	for _, b := range tr.Blocks {
		blk, err := body(b)
		if err != nil {
			return nil, err
		}
		switch b.Name {
		case blkAt:
			var prev int64
			if err := readVarints(b.Name, blk, func(i int, v uint64) error {
				if i == 0 {
					prev = int64(v)
				} else {
					prev += int64(v)
				}
				cols.at[i] = prev
				return nil
			}); err != nil {
				return nil, err
			}
		case blkID:
			var prev int64
			if err := readVarints(b.Name, blk, func(i int, v uint64) error {
				if i == 0 {
					prev = int64(v)
				} else {
					prev += unzigzag(v)
				}
				cols.id[i] = uint64(prev)
				return nil
			}); err != nil {
				return nil, err
			}
		case blkSrc:
			pos, row := 0, 0
			for row < n {
				idx, w := binary.Uvarint(blk[pos:])
				if w <= 0 {
					return nil, corrupt(b.Name, "truncated run")
				}
				pos += w
				run, w := binary.Uvarint(blk[pos:])
				if w <= 0 || run == 0 || row+int(run) > n || idx >= uint64(len(cols.dict)) {
					return nil, corrupt(b.Name, "bad run")
				}
				pos += w
				for k := 0; k < int(run); k++ {
					cols.src[row] = uint8(idx)
					row++
				}
			}
		case blkX, blkY:
			if len(blk) != 8*n {
				return nil, corrupt(b.Name, "bad length")
			}
			dst := cols.x
			if b.Name == blkY {
				dst = cols.y
			}
			for i := 0; i < n; i++ {
				dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(blk[8*i:]))
			}
		case blkPLen:
			var off uint32
			if err := readVarints(b.Name, blk, func(i int, v uint64) error {
				cols.payOff[i] = off
				off += uint32(v)
				return nil
			}); err != nil {
				return nil, err
			}
			cols.payOff[n] = off
		case blkPay:
			switch b.Enc {
			case "raw":
				cols.pay = blk
			case "huff":
				dec, err := huffman.AppendDecode(make([]byte, 0, 2*len(blk)), blk)
				if err != nil {
					return nil, corrupt(b.Name, err.Error())
				}
				cols.pay = dec
			default:
				return nil, corrupt(b.Name, "unknown encoding "+b.Enc)
			}
		}
	}
	if int(cols.payOff[n]) != len(cols.pay) {
		return nil, corrupt(blkPay, "payload length mismatch")
	}
	cols.idSorted = true
	for i := 1; i < n; i++ {
		if cols.id[i] < cols.id[i-1] {
			cols.idSorted = false
			break
		}
	}
	return cols, nil
}

package ddi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// DiskStore is the persistent tier: an append-only JSON-lines log with an
// in-memory index rebuilt at open. It stands in for the paper's MySQL —
// the design property that matters (durable, slower than memory, queried
// on cache miss) is preserved.
type DiskStore struct {
	mu     sync.Mutex
	path   string
	file   *os.File
	w      *bufio.Writer
	nextID uint64
	index  map[uint64]*Record // full records; payloads are small here
	byTime []uint64           // IDs sorted by (At, ID)
}

// OpenDiskStore opens (or creates) a store rooted at dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("ddi: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("create store dir: %w", err)
	}
	path := filepath.Join(dir, "ddi.log")
	s := &DiskStore{path: path, index: make(map[uint64]*Record), nextID: 1}
	if err := s.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open store log: %w", err)
	}
	s.file = f
	s.w = bufio.NewWriter(f)
	return s, nil
}

// load replays the log into the index. Every record is appended as one
// "json\n" write, so a crash can only tear the log's final line — and a
// torn tail has no trailing newline, because the newline is the last byte
// of the write. load therefore drops (and truncates away) an unparseable
// unterminated final line, but refuses to open on any newline-terminated
// line that does not parse: that is mid-file corruption, and silently
// skipping it would drop durable records.
func (s *DiskStore) load() error {
	f, err := os.Open(s.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("open store log: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var offset int64
	tornAt := int64(-1)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return fmt.Errorf("scan store log: %w", rerr)
		}
		terminated := len(line) > 0 && line[len(line)-1] == '\n'
		body := line
		if terminated {
			body = body[:len(body)-1]
		}
		if len(body) > 0 {
			var r Record
			if uerr := json.Unmarshal(body, &r); uerr != nil {
				if terminated {
					return fmt.Errorf("ddi: corrupt store log %s at offset %d: %w", s.path, offset, uerr)
				}
				tornAt = offset
			} else {
				rec := r
				s.index[rec.ID] = &rec
				s.byTime = append(s.byTime, rec.ID)
				if rec.ID >= s.nextID {
					s.nextID = rec.ID + 1
				}
			}
		}
		offset += int64(len(line))
		if rerr == io.EOF {
			break
		}
	}
	if tornAt >= 0 {
		// Cut the torn tail off so the next append starts on a clean line
		// instead of gluing new JSON onto the partial record.
		if err := os.Truncate(s.path, tornAt); err != nil {
			return fmt.Errorf("truncate torn store log: %w", err)
		}
	}
	s.sortByTime()
	return nil
}

func (s *DiskStore) sortByTime() {
	sort.Slice(s.byTime, func(i, j int) bool {
		a, b := s.index[s.byTime[i]], s.index[s.byTime[j]]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.ID < b.ID
	})
}

// Put assigns an ID, persists the record, and indexes it.
func (s *DiskStore) Put(r Record) (uint64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return 0, fmt.Errorf("ddi: store is closed")
	}
	r.ID = s.nextID
	s.nextID++
	line, err := json.Marshal(&r)
	if err != nil {
		return 0, fmt.Errorf("marshal record: %w", err)
	}
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		return 0, fmt.Errorf("append record: %w", err)
	}
	rec := r
	s.index[rec.ID] = &rec
	// Insert maintaining time order (records usually arrive in order, so
	// this is an O(1) append in the common case).
	s.byTime = append(s.byTime, rec.ID)
	n := len(s.byTime)
	if n > 1 {
		prev := s.index[s.byTime[n-2]]
		if prev.At > rec.At {
			s.sortByTime()
		}
	}
	return rec.ID, nil
}

// Get returns a record by ID.
func (s *DiskStore) Get(id uint64) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.index[id]
	if !ok {
		return Record{}, false
	}
	return *r, true
}

// Select returns matching records in time order. The (At, ID)-sorted
// index is binary-searched for the query's time-window bounds, so a
// narrow window over a large store visits only the window's records
// instead of scanning the whole log; source/spatial/limit filters still
// apply per record inside the window.
func (s *DiskStore) Select(q Query) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, id := range s.windowLocked(q.From, q.To) {
		r := s.index[id]
		if !q.Matches(r) {
			continue
		}
		out = append(out, *r)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

// windowLocked narrows byTime to the IDs whose capture time satisfies the
// query window — At >= from, and At <= to when to > 0 (Query.To zero
// means unbounded above, matching Query.Matches exactly).
func (s *DiskStore) windowLocked(from, to time.Duration) []uint64 {
	lo := sort.Search(len(s.byTime), func(i int) bool {
		return s.index[s.byTime[i]].At >= from
	})
	hi := len(s.byTime)
	if to > 0 {
		hi = lo + sort.Search(len(s.byTime)-lo, func(i int) bool {
			return s.index[s.byTime[lo+i]].At > to
		})
	}
	return s.byTime[lo:hi]
}

// DeleteBefore removes records captured strictly before t (used after
// cloud migration) and returns how many were removed. The log is
// compacted in place.
func (s *DiskStore) DeleteBefore(t time.Duration) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return 0, fmt.Errorf("ddi: store is closed")
	}
	removed := 0
	var kept []uint64
	for _, id := range s.byTime {
		if s.index[id].At < t {
			delete(s.index, id)
			removed++
		} else {
			kept = append(kept, id)
		}
	}
	s.byTime = kept
	if removed > 0 {
		if err := s.compactLocked(); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// compactLocked rewrites the log with only indexed records.
func (s *DiskStore) compactLocked() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.file.Close(); err != nil {
		return err
	}
	tmp := s.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("create compact file: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, id := range s.byTime {
		line, err := json.Marshal(s.index[id])
		if err != nil {
			f.Close()
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("swap compact file: %w", err)
	}
	nf, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("reopen store log: %w", err)
	}
	s.file = nf
	s.w = bufio.NewWriter(nf)
	return nil
}

// Count returns the number of stored records.
func (s *DiskStore) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Flush persists buffered writes.
func (s *DiskStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	return s.w.Flush()
}

// Close flushes and releases the log file.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	err := s.file.Close()
	s.w, s.file = nil, nil
	return err
}

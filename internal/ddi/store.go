package ddi

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
)

// DiskStore is the persistent tier: an append-only, virtual-time-
// partitioned segment engine. Puts land in a framed write-ahead log and a
// columnar memtable; once the memtable reaches the seal threshold it is
// sealed into immutable segment files — one per At partition — with
// per-column compression and a zone-map footer. Queries compile to a plan
// that prunes segments through their zone maps, binary-searches the At
// column of the candidates, and streams the k-way merge of segment and
// memtable cursors. It stands in for the paper's MySQL — the design
// property that matters (durable, slower than memory, queried on cache
// miss) is preserved — while scaling to fleet-sized histories.
type DiskStore struct {
	mu   sync.RWMutex
	dir  string
	path string // WAL: dir/ddi.log
	file *os.File
	w    *bufio.Writer

	nextID  uint64
	nextSeq uint64
	mem     *memtable
	segs    []*segment // ascending seq; slices are replaced, never edited

	sealRows int
	partDur  time.Duration
	scratch  []byte // WAL frame build buffer (Put is single-writer under mu)
}

// Seal policy defaults: rows per memtable before it seals, and the At
// width of one segment partition.
const (
	DefaultSealRows  = 65536
	DefaultPartition = 5 * time.Minute
)

// memtable buffers unsealed records in columnar form. Rows sit in append
// order; IDs are assigned monotonically, so the id column is always
// sorted and point lookups binary-search it. atSorted tracks whether
// append order is already (At, ID) order — true for in-order ingest —
// letting queries and seals skip the sort.
type memtable struct {
	cols     segCols
	srcIdx   map[Source]uint8
	atSorted bool
}

func newMemtable() *memtable {
	return &memtable{
		cols:     segCols{payOff: []uint32{0}, idSorted: true},
		srcIdx:   make(map[Source]uint8),
		atSorted: true,
	}
}

// append adds r, copying the payload into the arena.
func (m *memtable) append(r *Record) error {
	c := &m.cols
	idx, ok := m.srcIdx[r.Source]
	if !ok {
		if len(c.dict) >= 256 {
			return fmt.Errorf("ddi: segment source dictionary overflow (max 256 distinct sources)")
		}
		idx = uint8(len(c.dict))
		c.dict = append(c.dict, r.Source)
		m.srcIdx[r.Source] = idx
	}
	if n := len(c.at); n > 0 {
		if c.at[n-1] > int64(r.At) {
			m.atSorted = false
		}
		if c.id[n-1] > r.ID {
			c.idSorted = false
		}
	}
	c.id = append(c.id, r.ID)
	c.at = append(c.at, int64(r.At))
	c.src = append(c.src, idx)
	c.x = append(c.x, r.X)
	c.y = append(c.y, r.Y)
	c.pay = append(c.pay, r.Payload...)
	c.payOff = append(c.payOff, uint32(len(c.pay)))
	return nil
}

// get materialises the row holding id, binary-searching the sorted id
// column.
func (m *memtable) get(id uint64) (Record, bool) {
	c := &m.cols
	i := sort.Search(len(c.id), func(i int) bool { return c.id[i] >= id })
	if i >= len(c.id) || c.id[i] != id {
		return Record{}, false
	}
	return Record{
		ID: c.id[i], Source: c.dict[c.src[i]], At: time.Duration(c.at[i]),
		X: c.x[i], Y: c.y[i], Payload: c.payload(i),
	}, true
}

// sortedView returns the memtable's rows ordered by (At, ID). In-order
// ingest aliases the live arrays (appends only ever touch rows beyond
// this view's length); out-of-order ingest materialises a sorted copy.
func (m *memtable) sortedView() *segCols {
	view := m.cols // value copy pins the slice lengths
	if m.atSorted {
		return &view
	}
	perm := make([]int, view.rows())
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		ai, bi := perm[a], perm[b]
		if view.at[ai] != view.at[bi] {
			return view.at[ai] < view.at[bi]
		}
		return view.id[ai] < view.id[bi]
	})
	return permuteCols(&view, perm)
}

// permuteCols materialises rows of src in perm order as standalone
// columns (fresh dictionary in first-appearance order).
func permuteCols(src *segCols, perm []int) *segCols {
	n := len(perm)
	out := &segCols{
		id: make([]uint64, 0, n), at: make([]int64, 0, n), src: make([]uint8, 0, n),
		x: make([]float64, 0, n), y: make([]float64, 0, n),
		payOff: make([]uint32, 1, n+1), pay: make([]byte, 0, len(src.pay)),
	}
	dictIdx := make(map[Source]uint8, len(src.dict))
	out.idSorted = true
	for _, i := range perm {
		s := src.dict[src.src[i]]
		di, ok := dictIdx[s]
		if !ok {
			di = uint8(len(out.dict))
			out.dict = append(out.dict, s)
			dictIdx[s] = di
		}
		if n := len(out.id); n > 0 && out.id[n-1] > src.id[i] {
			out.idSorted = false
		}
		out.id = append(out.id, src.id[i])
		out.at = append(out.at, src.at[i])
		out.src = append(out.src, di)
		out.x = append(out.x, src.x[i])
		out.y = append(out.y, src.y[i])
		out.pay = append(out.pay, src.payload(i)...)
		out.payOff = append(out.payOff, uint32(len(out.pay)))
	}
	return out
}

// sliceCols carves rows [lo, hi) of sorted cols into a standalone view:
// fixed columns alias src, while src indexes and payload offsets are
// rebuilt against a partition-local dictionary and blob.
func sliceCols(c *segCols, lo, hi int) *segCols {
	n := hi - lo
	out := &segCols{
		id: c.id[lo:hi:hi], at: c.at[lo:hi:hi],
		x: c.x[lo:hi:hi], y: c.y[lo:hi:hi],
		src:    make([]uint8, n),
		payOff: make([]uint32, n+1),
		pay:    c.pay[c.payOff[lo]:c.payOff[hi]:c.payOff[hi]],
	}
	var remap [256]int16
	for i := range remap {
		remap[i] = -1
	}
	base := c.payOff[lo]
	out.idSorted = true
	for i := 0; i < n; i++ {
		si := c.src[lo+i]
		if remap[si] < 0 {
			remap[si] = int16(len(out.dict))
			out.dict = append(out.dict, c.dict[si])
		}
		out.src[i] = uint8(remap[si])
		out.payOff[i] = c.payOff[lo+i] - base
		if i > 0 && out.id[i] < out.id[i-1] {
			out.idSorted = false
		}
	}
	out.payOff[n] = c.payOff[hi] - base
	return out
}

// OpenDiskStore opens (or creates) a store rooted at dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("ddi: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("create store dir: %w", err)
	}
	s := &DiskStore{
		dir:      dir,
		path:     filepath.Join(dir, "ddi.log"),
		nextID:   1,
		nextSeq:  1,
		mem:      newMemtable(),
		sealRows: DefaultSealRows,
		partDur:  DefaultPartition,
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open store log: %w", err)
	}
	s.file = f
	s.w = bufio.NewWriterSize(f, 1<<20)
	return s, nil
}

// SetSealPolicy overrides the memtable seal threshold (rows) and the At
// partition width. Use before heavy ingest; zero values keep the current
// setting.
func (s *DiskStore) SetSealPolicy(rows int, partition time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rows > 0 {
		s.sealRows = rows
	}
	if partition > 0 {
		s.partDur = partition
	}
}

// load restores state at open: stray .tmp seal leftovers are removed,
// sealed segments contribute their zone-map trailers (columns stay on
// disk until a query needs them), and the WAL replays into the memtable.
// A crash between sealing and WAL truncation leaves sealed records in the
// log, so replay skips any frame whose ID a segment already covers. The
// WAL keeps the old log's fail-open contract: a torn final frame is
// dropped and truncated away; mid-file corruption refuses the open.
func (s *DiskStore) load() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("scan store dir: %w", err)
	}
	var maxSegID uint64
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".tmp" {
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		seq, ok := parseSegSeq(name)
		if !ok {
			continue
		}
		path := filepath.Join(s.dir, name)
		tr, terr := readSegmentTrailer(path)
		if terr != nil {
			return terr
		}
		s.segs = append(s.segs, &segment{path: path, seq: seq, zm: tr.Zone})
		if seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
		if tr.Zone.MaxID > maxSegID {
			maxSegID = tr.Zone.MaxID
		}
	}
	sort.Slice(s.segs, func(i, j int) bool { return s.segs[i].seq < s.segs[j].seq })
	if maxSegID >= s.nextID {
		s.nextID = maxSegID + 1
	}
	var replayErr error
	truncateAt, err := replayWAL(s.path, func(r *Record) {
		if replayErr != nil || r.ID <= maxSegID {
			return // already sealed before the crash
		}
		if aerr := s.mem.append(r); aerr != nil {
			replayErr = aerr
			return
		}
		if r.ID >= s.nextID {
			s.nextID = r.ID + 1
		}
	})
	if err != nil {
		return err
	}
	if replayErr != nil {
		return replayErr
	}
	if truncateAt >= 0 {
		// Cut the torn tail off so the next append starts on a clean
		// frame instead of gluing onto the partial one.
		if err := os.Truncate(s.path, truncateAt); err != nil {
			return fmt.Errorf("truncate torn store log: %w", err)
		}
	}
	return nil
}

// Put assigns an ID, persists the record to the WAL, and buffers it in
// the memtable, sealing when the memtable reaches the threshold.
func (s *DiskStore) Put(r Record) (uint64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return 0, fmt.Errorf("ddi: store is closed")
	}
	r.ID = s.nextID
	s.nextID++
	s.scratch = appendWALFrame(s.scratch[:0], &r)
	if _, err := s.w.Write(s.scratch); err != nil {
		return 0, fmt.Errorf("append record: %w", err)
	}
	if err := s.mem.append(&r); err != nil {
		return 0, err
	}
	if s.mem.cols.rows() >= s.sealRows {
		if err := s.sealLocked(); err != nil {
			return 0, err
		}
	}
	return r.ID, nil
}

// Seal forces the memtable into sealed segments (one per At partition).
// A no-op when the memtable is empty.
func (s *DiskStore) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return fmt.Errorf("ddi: store is closed")
	}
	return s.sealLocked()
}

// sealLocked seals the memtable: rows sort by (At, ID), split into At
// partitions, and each partition becomes one immutable segment written
// tmp+rename. Only after every partition publishes does the store adopt
// the segments, reset the memtable, and truncate the WAL — a crash
// mid-seal leaves orphan segments that the next open dedupes by ID, and
// an error mid-seal removes this seal's files so in-memory state stays
// consistent.
func (s *DiskStore) sealLocked() error {
	if s.mem.cols.rows() == 0 {
		return nil
	}
	sorted := s.mem.sortedView()
	var sealed []*segment
	fail := func(err error) error {
		for _, sg := range sealed {
			os.Remove(sg.path)
		}
		return err
	}
	for lo := 0; lo < sorted.rows(); {
		part := sorted.at[lo] / int64(s.partDur)
		hi := lo + 1
		for hi < sorted.rows() && sorted.at[hi]/int64(s.partDur) == part {
			hi++
		}
		seg, err := writeSegmentFile(s.dir, s.nextSeq+uint64(len(sealed)), sliceCols(sorted, lo, hi))
		if err != nil {
			return fail(err)
		}
		sealed = append(sealed, seg)
		lo = hi
	}
	// Publish: segments first, then drop the WAL coverage. The buffered
	// frames are all sealed now, so the unflushed buffer resets too.
	s.w.Reset(s.file)
	if err := os.Truncate(s.path, 0); err != nil {
		return fail(fmt.Errorf("truncate store log after seal: %w", err))
	}
	s.nextSeq += uint64(len(sealed))
	segs := make([]*segment, 0, len(s.segs)+len(sealed))
	segs = append(segs, s.segs...)
	s.segs = append(segs, sealed...)
	s.mem = newMemtable()
	return nil
}

// Get returns a record by ID, checking the memtable first, then sealed
// segments newest-first (zone maps bound each segment's ID range).
func (s *DiskStore) Get(id uint64) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r, ok := s.mem.get(id); ok {
		return r, true
	}
	for i := len(s.segs) - 1; i >= 0; i-- {
		sg := s.segs[i]
		if id < sg.zm.MinID || id > sg.zm.MaxID {
			continue
		}
		if row := sg.findID(id); row >= 0 {
			cols, _ := sg.load()
			return Record{
				ID: cols.id[row], Source: cols.dict[cols.src[row]],
				At: time.Duration(cols.at[row]), X: cols.x[row], Y: cols.y[row],
				Payload: cols.payload(row),
			}, true
		}
	}
	return Record{}, false
}

// Scan compiles q and returns a streaming iterator over matching records
// in (At, ID) order. The iterator stays valid after concurrent Puts,
// seals, and deletes: it reads immutable columns only. Check Err after
// the loop for plan-compilation failures.
func (s *DiskStore) Scan(q Query) *Iterator {
	s.mu.RLock()
	p, err := compilePlan(q, s.segs, s.mem.sortedView())
	s.mu.RUnlock()
	if err != nil {
		return errIterator(err)
	}
	return newIterator(p, q.Limit)
}

// Select returns matching records in time order. Records stream out of
// the plan's cursors; only survivors are copied into the result.
func (s *DiskStore) Select(q Query) []Record {
	it := s.Scan(q)
	var out []Record
	for it.Next() {
		out = append(out, *it.Record())
	}
	return out
}

// Aggregate computes count/min/max/sum/mean of col over the records
// matching q (Limit is ignored), along with the plan stats that produced
// it. Segments fully covered by the query answer straight from their
// zone maps without touching columns.
func (s *DiskStore) Aggregate(q Query, col Column) (Agg, PlanStats, error) {
	s.mu.RLock()
	p, err := compilePlan(q, s.segs, s.mem.sortedView())
	s.mu.RUnlock()
	if err != nil {
		return Agg{}, PlanStats{}, err
	}
	return p.aggregate(col), p.stats, nil
}

// Explain compiles q and reports what the plan would prune and scan.
func (s *DiskStore) Explain(q Query) (PlanStats, error) {
	s.mu.RLock()
	p, err := compilePlan(q, s.segs, s.mem.sortedView())
	s.mu.RUnlock()
	if err != nil {
		return PlanStats{}, err
	}
	return p.stats, nil
}

// Segments returns the zone maps of the sealed segments, oldest first.
func (s *DiskStore) Segments() []ZoneMap {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ZoneMap, len(s.segs))
	for i, sg := range s.segs {
		out[i] = sg.zm
	}
	return out
}

// DeleteBefore removes records captured strictly before t (used after
// cloud migration) and returns how many were removed. Segments wholly
// before t drop without being read; a segment straddling t is rewritten
// with only its surviving rows; memtable rows filter in memory and the
// WAL is rewritten to match.
func (s *DiskStore) DeleteBefore(t time.Duration) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return 0, fmt.Errorf("ddi: store is closed")
	}
	removed := 0
	keep := make([]*segment, 0, len(s.segs))
	for _, sg := range s.segs {
		switch {
		case sg.zm.MaxAt < t: // whole partition expired
			removed += sg.zm.Count
			os.Remove(sg.path)
		case sg.zm.MinAt >= t:
			keep = append(keep, sg)
		default: // straddles t: rewrite survivors
			cols, err := sg.load()
			if err != nil {
				return removed, err
			}
			lo := sort.Search(cols.rows(), func(i int) bool { return cols.at[i] >= int64(t) })
			removed += lo
			nsg, err := writeSegmentFile(s.dir, s.nextSeq, sliceCols(cols, lo, cols.rows()))
			if err != nil {
				return removed, err
			}
			s.nextSeq++
			os.Remove(sg.path)
			keep = append(keep, nsg)
		}
	}
	s.segs = keep
	// Memtable: keep survivors, rewrite the WAL to the surviving rows.
	if m := s.mem; m.cols.rows() > 0 {
		var perm []int
		dropped := 0
		for i := 0; i < m.cols.rows(); i++ {
			if m.cols.at[i] >= int64(t) {
				perm = append(perm, i)
			} else {
				dropped++
			}
		}
		if dropped > 0 {
			removed += dropped
			filtered := permuteCols(&m.cols, perm)
			nm := newMemtable()
			nm.cols = *filtered
			for i, src := range filtered.dict {
				nm.srcIdx[src] = uint8(i)
			}
			for i := 1; i < len(filtered.at); i++ {
				if filtered.at[i] < filtered.at[i-1] {
					nm.atSorted = false
					break
				}
			}
			s.mem = nm
			if err := s.rewriteWALLocked(); err != nil {
				return removed, err
			}
		}
	}
	return removed, nil
}

// rewriteWALLocked rebuilds the WAL from the memtable via tmp+rename.
func (s *DiskStore) rewriteWALLocked() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.file.Close(); err != nil {
		return err
	}
	var buf []byte
	c := &s.mem.cols
	var r Record
	for i := 0; i < c.rows(); i++ {
		r = Record{
			ID: c.id[i], Source: c.dict[c.src[i]], At: time.Duration(c.at[i]),
			X: c.x[i], Y: c.y[i], Payload: c.payload(i),
		}
		buf = appendWALFrame(buf, &r)
	}
	tmp := s.path + ".wal.tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("rewrite store log: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("swap store log: %w", err)
	}
	nf, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("reopen store log: %w", err)
	}
	s.file = nf
	s.w = bufio.NewWriterSize(nf, 1<<20)
	return nil
}

// Compact merges partitions that have accumulated multiple small
// segments (repeated seals, DeleteBefore rewrites) into one segment per
// partition, and reports how many segments were merged away.
func (s *DiskStore) Compact() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return 0, fmt.Errorf("ddi: store is closed")
	}
	groups := make(map[int64][]*segment)
	for _, sg := range s.segs {
		part := int64(sg.zm.MinAt) / int64(s.partDur)
		groups[part] = append(groups[part], sg)
	}
	mergedAway := 0
	replaced := make(map[*segment]*segment) // old -> new (nil = dropped)
	for _, group := range groups {
		if len(group) < 2 {
			continue
		}
		p := &plan{q: Query{}}
		for _, sg := range group {
			cols, err := sg.load()
			if err != nil {
				return mergedAway, err
			}
			p.addCursor(cols, &sg.zm)
		}
		it := newIterator(p, 0)
		merged := newMemtable()
		for it.Next() {
			if err := merged.append(it.Record()); err != nil {
				return mergedAway, err
			}
		}
		view := merged.sortedView()
		nsg, err := writeSegmentFile(s.dir, s.nextSeq, view)
		if err != nil {
			return mergedAway, err
		}
		s.nextSeq++
		for i, sg := range group {
			os.Remove(sg.path)
			if i == 0 {
				replaced[sg] = nsg
			} else {
				replaced[sg] = nil
			}
		}
		mergedAway += len(group) - 1
	}
	if mergedAway > 0 {
		keep := make([]*segment, 0, len(s.segs)-mergedAway)
		for _, sg := range s.segs {
			if nsg, ok := replaced[sg]; ok {
				if nsg != nil {
					keep = append(keep, nsg)
				}
				continue
			}
			keep = append(keep, sg)
		}
		sort.Slice(keep, func(i, j int) bool { return keep[i].seq < keep[j].seq })
		s.segs = keep
	}
	return mergedAway, nil
}

// StartCompaction schedules Compact on the engine's virtual clock every
// `every` (seal first, so long-idle memtables reach disk). The returned
// stop function cancels the schedule.
func (s *DiskStore) StartCompaction(eng *sim.Engine, every time.Duration) (func(), error) {
	return eng.Every(every, func() {
		s.mu.Lock()
		if s.w != nil {
			_ = s.sealLocked()
		}
		s.mu.Unlock()
		_, _ = s.Compact()
	})
}

// Count returns the number of stored records.
func (s *DiskStore) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.mem.cols.rows()
	for _, sg := range s.segs {
		n += sg.zm.Count
	}
	return n
}

// Flush persists buffered WAL writes.
func (s *DiskStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	return s.w.Flush()
}

// Close flushes and releases the WAL file. The memtable is not sealed:
// the WAL replays it on the next open.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	err := s.file.Close()
	s.w, s.file = nil, nil
	return err
}

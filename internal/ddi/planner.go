package ddi

import (
	"sort"
	"time"
)

// The query planner compiles a ddi.Query into a plan: zone-map pruning
// picks the segments that can hold matching rows (a pruned segment is
// never read), a binary search on each candidate's sorted At column
// narrows to the exact row range, and per-row predicates (source,
// spatial) are kept only when the zone map cannot prove them vacuous.
// The same plan drives the streaming iterator and the aggregate path.

// Column names a numeric column an aggregate can run over.
type Column int

// Aggregatable columns.
const (
	// ColAt aggregates capture time (values in nanoseconds).
	ColAt Column = iota
	// ColX / ColY aggregate the position columns.
	ColX
	ColY
	// ColPayloadBytes aggregates payload sizes.
	ColPayloadBytes
)

// String names the column for CLI/HTTP surfaces.
func (c Column) String() string {
	switch c {
	case ColAt:
		return "at"
	case ColX:
		return "x"
	case ColY:
		return "y"
	case ColPayloadBytes:
		return "payload_bytes"
	}
	return "unknown"
}

// ParseColumn maps a column name to its Column, reversing String.
func ParseColumn(s string) (Column, bool) {
	switch s {
	case "at":
		return ColAt, true
	case "x":
		return ColX, true
	case "y":
		return ColY, true
	case "payload_bytes":
		return ColPayloadBytes, true
	}
	return 0, false
}

// Agg is a windowed aggregate over one column.
type Agg struct {
	// Count is the number of matching records.
	Count int `json:"count"`
	// Min/Max/Sum/Mean summarize the column over matching records; all
	// zero when Count is zero.
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Sum  float64 `json:"sum"`
	Mean float64 `json:"mean"`
}

// PlanStats reports what a compiled plan decided, for Explain and the
// pruning benchmarks.
type PlanStats struct {
	// Segments is how many sealed segments existed at plan time.
	Segments int `json:"segments"`
	// Candidates survived zone-map pruning (their files were read).
	Candidates int `json:"candidates"`
	// Pruned segments were skipped without touching disk.
	Pruned int `json:"pruned"`
	// RowsScanned is the total row count inside candidate row ranges,
	// including the memtable's window.
	RowsScanned int `json:"rowsScanned"`
	// MemRows is the memtable's share of RowsScanned.
	MemRows int `json:"memRows"`
}

// SkipRatio is the fraction of sealed segments the plan never read.
func (p PlanStats) SkipRatio() float64 {
	if p.Segments == 0 {
		return 0
	}
	return float64(p.Pruned) / float64(p.Segments)
}

// planCursor scans one run (a sealed segment's row range, or the
// memtable snapshot) with the residual per-row predicates the zone map
// could not discharge.
type planCursor struct {
	cols *segCols
	zm   *ZoneMap // nil for the memtable cursor
	idx  int      // current row
	hi   int      // exclusive upper row

	srcNeeded bool
	srcIdx    uint8
	geoNeeded bool
	gx, gy, r2 float64
}

// whole reports that no per-row predicate applies inside [idx, hi).
func (c *planCursor) whole() bool { return !c.srcNeeded && !c.geoNeeded }

// matches applies the residual predicates to row i.
func (c *planCursor) matches(i int) bool {
	if c.srcNeeded && c.cols.src[i] != c.srcIdx {
		return false
	}
	if c.geoNeeded {
		dx, dy := c.cols.x[i]-c.gx, c.cols.y[i]-c.gy
		if dx*dx+dy*dy > c.r2 {
			return false
		}
	}
	return true
}

// seek advances idx to the next matching row (or hi).
func (c *planCursor) seek() {
	for c.idx < c.hi && !c.matches(c.idx) {
		c.idx++
	}
}

// plan is a compiled query: the surviving cursors plus bookkeeping.
type plan struct {
	q     Query
	curs  []planCursor
	stats PlanStats
}

// atRange binary-searches the sorted At column for the query window
// (to <= 0 unbounded above, matching Query.Matches).
func atRange(at []int64, from, to time.Duration) (lo, hi int) {
	lo = sort.Search(len(at), func(i int) bool { return at[i] >= int64(from) })
	hi = len(at)
	if to > 0 {
		hi = lo + sort.Search(len(at)-lo, func(i int) bool { return at[lo+i] > int64(to) })
	}
	return lo, hi
}

// addCursor appends a cursor over cols (zone map zm when sealed) with the
// residual predicates q needs, or drops it when the range is empty.
func (p *plan) addCursor(cols *segCols, zm *ZoneMap) {
	lo, hi := atRange(cols.at, p.q.From, p.q.To)
	if lo >= hi {
		return
	}
	c := planCursor{cols: cols, zm: zm, idx: lo, hi: hi}
	if p.q.Source != "" {
		// The window rows all share the segment dictionary; a
		// single-entry dictionary proves the predicate row-free.
		found := false
		for i, s := range cols.dict {
			if s == p.q.Source {
				c.srcIdx = uint8(i)
				found = true
				break
			}
		}
		if !found {
			return // no row can match (memtable cursors lack zone-map pruning)
		}
		c.srcNeeded = len(cols.dict) > 1
	}
	if p.q.Radius > 0 {
		c.gx, c.gy, c.r2 = p.q.X, p.q.Y, p.q.Radius*p.q.Radius
		c.geoNeeded = zm == nil || !zm.ContainsCircle(p.q.X, p.q.Y, p.q.Radius)
	}
	c.seek()
	p.stats.RowsScanned += hi - lo
	if zm == nil {
		p.stats.MemRows += hi - lo
	}
	p.curs = append(p.curs, c)
}

// compilePlan prunes segs through their zone maps, loads the candidates,
// and builds cursors; mem is the memtable snapshot (nil when empty).
func compilePlan(q Query, segs []*segment, mem *segCols) (*plan, error) {
	p := &plan{q: q}
	p.stats.Segments = len(segs)
	for _, sg := range segs {
		zm := &sg.zm
		if !zm.OverlapsWindow(q.From, q.To) ||
			(q.Source != "" && !zm.HasSource(q.Source)) ||
			(q.Radius > 0 && !zm.IntersectsCircle(q.X, q.Y, q.Radius)) {
			p.stats.Pruned++
			continue
		}
		p.stats.Candidates++
		cols, err := sg.load()
		if err != nil {
			return nil, err
		}
		p.addCursor(cols, zm)
	}
	if mem != nil && mem.rows() > 0 {
		p.addCursor(mem, nil)
	}
	return p, nil
}

// colValue reads column col of row i.
func colValue(cols *segCols, col Column, i int) float64 {
	switch col {
	case ColAt:
		return float64(cols.at[i])
	case ColX:
		return cols.x[i]
	case ColY:
		return cols.y[i]
	default:
		return float64(cols.payOff[i+1] - cols.payOff[i])
	}
}

// zoneAgg folds a fully-covered segment's zone map into the aggregate
// without touching its columns.
func zoneAgg(a *Agg, zm *ZoneMap, col Column) {
	var mn, mx, sum float64
	switch col {
	case ColAt:
		mn, mx, sum = float64(zm.MinAt), float64(zm.MaxAt), zm.SumAt
	case ColX:
		mn, mx, sum = zm.MinX, zm.MaxX, zm.SumX
	case ColY:
		mn, mx, sum = zm.MinY, zm.MaxY, zm.SumY
	default:
		mn, mx, sum = float64(zm.MinPayload), float64(zm.MaxPayload), zm.SumPayload
	}
	if a.Count == 0 || mn < a.Min {
		a.Min = mn
	}
	if a.Count == 0 || mx > a.Max {
		a.Max = mx
	}
	a.Sum += sum
	a.Count += zm.Count
}

// aggregate folds the plan into a windowed aggregate over col. A sealed
// cursor whose row range covers the whole segment with no residual
// predicates contributes straight from its zone map.
func (p *plan) aggregate(col Column) Agg {
	var a Agg
	for i := range p.curs {
		c := &p.curs[i]
		if c.zm != nil && c.whole() && c.idx == 0 && c.hi == c.cols.rows() {
			zoneAgg(&a, c.zm, col)
			continue
		}
		for j := c.idx; j < c.hi; j++ {
			if !c.matches(j) {
				continue
			}
			v := colValue(c.cols, col, j)
			if a.Count == 0 || v < a.Min {
				a.Min = v
			}
			if a.Count == 0 || v > a.Max {
				a.Max = v
			}
			a.Sum += v
			a.Count++
		}
	}
	if a.Count > 0 {
		a.Mean = a.Sum / float64(a.Count)
	}
	return a
}

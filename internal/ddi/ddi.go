package ddi

import (
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/geo"
	"repro/internal/hardware"
	"repro/internal/obs"
	"repro/internal/sensors"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// memHitLatency is the in-memory tier's access cost — the Redis-role
// latency in the two-tier design.
const memHitLatency = 50 * time.Microsecond

// DDI is the driving data integrator facade: collectors on the bottom,
// the two-tier database in the middle, and upload/download service calls
// on top.
type DDI struct {
	store *DiskStore
	cache *MemCache
	ssd   *hardware.Storage

	obd       *sensors.OBD
	gps       *sensors.GPS
	feeds     *Feeds
	rng       *sim.RNG
	mob       geo.Mobility
	uploads   int
	downloads int

	tracer  *trace.Tracer
	metrics *telemetry.Registry
	m       ddiMetrics
}

// ddiMetrics holds the DDI's interned metric handles, resolved once in
// Instrument. All handles are nil-safe, so an uninstrumented DDI emits
// through them for free.
type ddiMetrics struct {
	collections      *telemetry.Counter
	recordsCollected *telemetry.Counter
	uploads          *telemetry.Counter
	bytesStored      *telemetry.Counter
	downloads        *telemetry.Counter
	diskReads        *telemetry.Counter
	aggregates       *telemetry.Counter
	readMS           *telemetry.HistogramHandle
	diskReadMS       *telemetry.HistogramHandle
}

// Instrument attaches a tracer and metrics registry (either may be nil).
// Service-layer calls then emit `ddi` spans; the cache tiers mirror their
// hit/miss/eviction outcomes as `ddi.cache.*` counters.
func (d *DDI) Instrument(tr *trace.Tracer, reg *telemetry.Registry) {
	d.tracer = tr
	d.metrics = reg
	d.cache.SetTelemetry(reg)
	d.m = ddiMetrics{
		collections:      reg.CounterHandle("ddi.collections"),
		recordsCollected: reg.CounterHandle("ddi.records_collected"),
		uploads:          reg.CounterHandle("ddi.uploads"),
		bytesStored:      reg.CounterHandle("ddi.bytes_stored"),
		downloads:        reg.CounterHandle("ddi.downloads"),
		diskReads:        reg.CounterHandle("ddi.disk_reads"),
		aggregates:       reg.CounterHandle("ddi.aggregates"),
		readMS:           reg.HistogramHandle("ddi.read_ms"),
		diskReadMS:       reg.HistogramHandle("ddi.disk_read_ms"),
	}
}

// Options configures New.
type Options struct {
	// Dir is the disk-store directory (required).
	Dir string
	// CacheCapacity bounds the in-memory tier. Zero means 4096.
	CacheCapacity int
	// CacheTTL is the survival time of cached entries. Zero means 5 min.
	CacheTTL time.Duration
	// Mobility drives the GPS collector.
	Mobility geo.Mobility
	// SSD models disk-tier access latency. Nil means DefaultSSD.
	SSD *hardware.Storage
}

// New assembles a DDI.
func New(opts Options, rng *sim.RNG) (*DDI, error) {
	if rng == nil {
		return nil, fmt.Errorf("ddi: nil RNG")
	}
	if opts.CacheCapacity == 0 {
		opts.CacheCapacity = 4096
	}
	if opts.CacheTTL == 0 {
		opts.CacheTTL = 5 * time.Minute
	}
	if opts.SSD == nil {
		opts.SSD = hardware.DefaultSSD()
	}
	store, err := OpenDiskStore(opts.Dir)
	if err != nil {
		return nil, err
	}
	cache, err := NewMemCache(opts.CacheCapacity, opts.CacheTTL)
	if err != nil {
		return nil, err
	}
	obd, err := sensors.NewOBD(rng.Fork())
	if err != nil {
		return nil, err
	}
	gps, err := sensors.NewGPS(opts.Mobility, rng.Fork())
	if err != nil {
		return nil, err
	}
	feeds, err := NewFeeds(rng.Fork())
	if err != nil {
		return nil, err
	}
	return &DDI{
		store: store, cache: cache, ssd: opts.SSD,
		obd: obd, gps: gps, feeds: feeds, rng: rng.Fork(), mob: opts.Mobility,
	}, nil
}

// OBD exposes the OBD collector (fault injection lives there).
func (d *DDI) OBD() *sensors.OBD { return d.obd }

// Cache exposes the in-memory tier for statistics.
func (d *DDI) Cache() *MemCache { return d.cache }

// SetRecorder attaches a flight recorder to the cache tier: capacity
// evictions emit `ddi` events (nil detaches).
func (d *DDI) SetRecorder(rec *obs.Recorder) { d.cache.SetRecorder(rec) }

// Store exposes the disk tier.
func (d *DDI) Store() *DiskStore { return d.store }

// Collect performs one collection round at virtual time now: OBD, GPS,
// weather, traffic, and any pending social events are sampled, stored, and
// cached. It returns the stored records.
func (d *DDI) Collect(now time.Duration) ([]Record, error) {
	span := d.tracer.StartSpanAt("ddi", "ddi.collect", now)
	recs, err := d.collect(now)
	if err != nil {
		span.SetAttr(trace.String("error", err.Error()))
	} else {
		span.SetAttr(trace.Int("records", len(recs)))
	}
	span.FinishAt(now)
	if err == nil {
		d.m.collections.Inc()
		d.m.recordsCollected.Add(float64(len(recs)))
	}
	return recs, err
}

// collect is the uninstrumented body of Collect.
func (d *DDI) collect(now time.Duration) ([]Record, error) {
	pos := d.mob.PositionAt(now)
	speedKPH := d.mob.SpeedMS * 3.6

	var out []Record
	add := func(source Source, v any) error {
		payload, err := MarshalPayload(v)
		if err != nil {
			return err
		}
		rec := Record{Source: source, At: now, X: pos.X, Y: pos.Y, Payload: payload}
		id, err := d.store.Put(rec)
		if err != nil {
			return err
		}
		rec.ID = id
		d.cache.Put(rec, now)
		out = append(out, rec)
		return nil
	}

	if err := add(SourceOBD, d.obd.Read(now, speedKPH)); err != nil {
		return nil, err
	}
	if err := add(SourceGPS, d.gps.Fix(now)); err != nil {
		return nil, err
	}
	if err := add(SourceWeather, d.feeds.Weather(now)); err != nil {
		return nil, err
	}
	if err := add(SourceTraffic, d.feeds.Traffic(now)); err != nil {
		return nil, err
	}
	// Social items arrive as free text and pass through the NLP stage
	// (Figure 7) before storage; unparseable posts are dropped.
	for _, ev := range d.feeds.Social(now) {
		post, err := ComposePost(ev, d.rng)
		if err != nil {
			return nil, err
		}
		parsed, ok := ExtractEvent(post.Text, ev.At)
		if !ok {
			continue
		}
		parsed.Y = ev.Y
		if err := add(SourceSocial, parsed); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Upload is the service-layer upload request: applications push their own
// records (paper: "for users to upload their data onto the DDI"). The
// record lands in the cache first and persists immediately (write-through;
// the paper's delayed write-back is modeled by TTL-based cache residency).
func (d *DDI) Upload(now time.Duration, source Source, x, y float64, payload []byte) (Record, error) {
	rec := Record{Source: source, At: now, X: x, Y: y, Payload: payload}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	id, err := d.store.Put(rec)
	if err != nil {
		return Record{}, err
	}
	rec.ID = id
	d.cache.Put(rec, now)
	d.uploads++
	if d.tracer.Enabled() {
		d.tracer.SpanAt("ddi", "ddi.upload", now, now,
			trace.String("source", string(source)), trace.Int("bytes", rec.SizeBytes()))
	}
	d.m.uploads.Inc()
	d.m.bytesStored.Add(float64(rec.SizeBytes()))
	return rec, nil
}

// DownloadByID is the service-layer point lookup: in-memory first, disk on
// miss with promotion. The returned latency is the simulated two-tier
// access cost.
func (d *DDI) DownloadByID(now time.Duration, id uint64) (Record, time.Duration, error) {
	d.downloads++
	d.m.downloads.Inc()
	if rec, ok := d.cache.Get(id, now); ok {
		if d.tracer.Enabled() {
			d.tracer.SpanAt("ddi", "ddi.get", now, now+memHitLatency,
				trace.String("tier", "mem"))
		}
		d.m.readMS.ObserveDuration(memHitLatency)
		return rec, memHitLatency, nil
	}
	rec, ok := d.store.Get(id)
	if !ok {
		return Record{}, 0, fmt.Errorf("ddi: record %d not found", id)
	}
	readTime, err := d.ssd.ReadTime(float64(rec.SizeBytes()) / 1e6)
	if err != nil {
		return Record{}, 0, err
	}
	d.cache.Put(rec, now) // promote
	if d.tracer.Enabled() {
		d.tracer.SpanAt("ddi", "ddi.get", now, now+memHitLatency+readTime,
			trace.String("tier", "disk"), trace.Int("bytes", rec.SizeBytes()))
	}
	d.m.diskReads.Inc()
	d.m.readMS.ObserveDuration(memHitLatency + readTime)
	d.m.diskReadMS.ObserveDuration(readTime)
	return rec, memHitLatency + readTime, nil
}

// Download is the service-layer range query (keyed by time/location per
// the paper). Range queries always hit the disk tier's index; results are
// promoted for subsequent point lookups.
func (d *DDI) Download(now time.Duration, q Query) ([]Record, time.Duration, error) {
	d.downloads++
	recs := d.store.Select(q)
	var bytes float64
	for i := range recs {
		bytes += float64(recs[i].SizeBytes())
		d.cache.Put(recs[i], now)
	}
	latency, err := d.ssd.ReadTime(bytes / 1e6)
	if err != nil {
		return nil, 0, err
	}
	if d.tracer.Enabled() {
		d.tracer.SpanAt("ddi", "ddi.query", now, now+latency,
			trace.Int("records", len(recs)), trace.F64("bytes", bytes))
	}
	d.m.downloads.Inc()
	d.m.diskReads.Inc()
	d.m.readMS.ObserveDuration(latency)
	d.m.diskReadMS.ObserveDuration(latency)
	return recs, latency, nil
}

// Aggregate is the service-layer windowed aggregate: count/min/max/mean
// of a column over the records matching q, answered by the store's query
// planner. Segments the zone maps prune cost nothing; fully-covered
// segments answer from their footers — the modeled disk latency charges
// only for the rows the plan actually scanned.
func (d *DDI) Aggregate(now time.Duration, q Query, col Column) (Agg, PlanStats, time.Duration, error) {
	agg, stats, err := d.store.Aggregate(q, col)
	if err != nil {
		return Agg{}, PlanStats{}, 0, err
	}
	// Columnar scan cost: ~48 bytes of fixed columns per scanned sealed
	// row (memtable rows are already resident).
	bytes := float64(stats.RowsScanned-stats.MemRows) * 48
	latency, err := d.ssd.ReadTime(bytes / 1e6)
	if err != nil {
		return Agg{}, PlanStats{}, 0, err
	}
	if d.tracer.Enabled() {
		d.tracer.SpanAt("ddi", "ddi.aggregate", now, now+latency,
			trace.String("column", col.String()), trace.Int("count", agg.Count),
			trace.Int("pruned", stats.Pruned), trace.Int("rows_scanned", stats.RowsScanned))
	}
	d.m.aggregates.Inc()
	d.m.readMS.ObserveDuration(latency)
	return agg, stats, latency, nil
}

// MigrateToCloud ships records older than `before` to the community data
// server and deletes them locally (paper: "eventually migrated to a cloud
// based data server"). It returns the migrated count and the simulated
// transfer duration over the given path.
func (d *DDI) MigrateToCloud(server *cloud.DataServer, pseudonym string, before time.Duration, cost func(sizeBytes float64) (time.Duration, error)) (int, time.Duration, error) {
	if server == nil {
		return 0, 0, fmt.Errorf("ddi: nil data server")
	}
	if before <= 0 {
		return 0, 0, nil
	}
	// Stream the expiring window off the store cursor: each record is
	// converted in place, so the local []Record is never materialized.
	it := d.store.Scan(Query{To: before - time.Nanosecond})
	var bytes float64
	var recs []cloud.Record
	for it.Next() {
		r := it.Record()
		bytes += float64(r.SizeBytes())
		recs = append(recs, cloud.Record{
			Vehicle: pseudonym,
			Source:  string(r.Source),
			At:      r.At,
			Payload: append([]byte(nil), r.Payload...),
		})
	}
	if err := it.Err(); err != nil {
		return 0, 0, err
	}
	if len(recs) == 0 {
		return 0, 0, nil
	}
	var dur time.Duration
	if cost != nil {
		var err error
		dur, err = cost(bytes)
		if err != nil {
			return 0, 0, err
		}
	}
	server.Ingest(recs...)
	if _, err := d.store.DeleteBefore(before); err != nil {
		return 0, 0, err
	}
	return len(recs), dur, nil
}

// Stats summarizes service-layer activity.
func (d *DDI) Stats() (uploads, downloads int, cacheHitRate float64) {
	return d.uploads, d.downloads, d.cache.HitRate()
}

// Close flushes and closes the disk tier.
func (d *DDI) Close() error { return d.store.Close() }

package ddi

import (
	"testing"
	"time"
)

func BenchmarkCachePutGet(b *testing.B) {
	c, err := NewMemCache(4096, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	r := Record{ID: 1, Source: SourceOBD, Payload: []byte(`{"rpm":2000}`)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ID = uint64(i%4096 + 1)
		c.Put(r, time.Duration(i))
		c.Get(r.ID, time.Duration(i))
	}
}

func BenchmarkStorePut(b *testing.B) {
	s, err := OpenDiskStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rec := Record{Source: SourceOBD, At: time.Second, Payload: []byte(`{"rpm":2000,"speed":88.2,"coolant":90.5}`)}
	b.SetBytes(int64(len(rec.Payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.At = time.Duration(i) * time.Millisecond
		if _, err := s.Put(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreSelectWindow(b *testing.B) {
	s, err := OpenDiskStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10000; i++ {
		rec := Record{Source: SourceOBD, At: time.Duration(i) * time.Second, Payload: []byte(`{"v":1}`)}
		if _, err := s.Put(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := s.Select(Query{Source: SourceOBD, From: 1000 * time.Second, To: 1600 * time.Second})
		if len(got) != 601 {
			b.Fatalf("got %d", len(got))
		}
	}
}

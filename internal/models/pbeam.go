package models

import (
	"fmt"

	"repro/internal/sim"
)

// PBEAMConfig parameterizes the cloud→edge pipeline of Figure 9:
// train cBEAM on population data in the cloud, compress it, ship it to the
// vehicle, and fine-tune it on the driver's own data into pBEAM.
type PBEAMConfig struct {
	// Hidden lists hidden-layer widths for cBEAM. Nil means {32, 16}.
	Hidden []int
	// CloudSamples is the population training-set size. Zero means 3000.
	CloudSamples int
	// CloudEpochs is cBEAM training length. Zero means 30.
	CloudEpochs int
	// DriverSamples is the personal fine-tuning set size. Zero means 400.
	DriverSamples int
	// TransferEpochs is the fine-tune length. Zero means 15.
	TransferEpochs int
	// Compress controls Deep Compression. Zero value means 60% pruning
	// with 5-bit codebooks.
	Compress CompressOptions
	// FreezeFeatureLayers keeps all but the output layer fixed during
	// transfer learning.
	FreezeFeatureLayers bool
}

func (c PBEAMConfig) withDefaults() PBEAMConfig {
	if c.Hidden == nil {
		c.Hidden = []int{32, 16}
	}
	if c.CloudSamples == 0 {
		c.CloudSamples = 3000
	}
	if c.CloudEpochs == 0 {
		c.CloudEpochs = 30
	}
	if c.DriverSamples == 0 {
		c.DriverSamples = 400
	}
	if c.TransferEpochs == 0 {
		c.TransferEpochs = 15
	}
	if c.Compress.PruneFraction == 0 && c.Compress.CodebookBits == 0 {
		c.Compress = CompressOptions{PruneFraction: 0.6, CodebookBits: 5}
	}
	return c
}

// PBEAMResult reports every stage of the pipeline.
type PBEAMResult struct {
	// CBEAM is the population model; PBEAM the personalized one.
	CBEAM *MLP
	PBEAM *MLP
	// CompressedCBEAM is what was shipped to the vehicle.
	CompressedCBEAM *Compressed

	// Accuracy of each stage on the driver's held-out data.
	CBEAMDriverAccuracy      float64
	CompressedDriverAccuracy float64
	PBEAMDriverAccuracy      float64
	// CBEAMPopulationAccuracy sanity-checks cloud training.
	CBEAMPopulationAccuracy float64

	CompressStats CompressStats
}

// BuildPBEAM runs the full pipeline for one driver and reports accuracies
// at every stage. The expected shape — and what the benchmarks assert — is
// population ≈ compressed < personalized on the driver's own data.
func BuildPBEAM(cfg PBEAMConfig, driver DriverProfile, rng *sim.RNG) (*PBEAMResult, error) {
	if rng == nil {
		return nil, fmt.Errorf("models: nil RNG")
	}
	cfg = cfg.withDefaults()

	// Cloud stage: train the common model on population data.
	popTrain, err := GenerateDataset(cfg.CloudSamples, PopulationDriver(), rng.Fork())
	if err != nil {
		return nil, fmt.Errorf("population data: %w", err)
	}
	popTest, err := GenerateDataset(cfg.CloudSamples/4, PopulationDriver(), rng.Fork())
	if err != nil {
		return nil, fmt.Errorf("population test data: %w", err)
	}
	sizes := append([]int{FeatureDim}, cfg.Hidden...)
	sizes = append(sizes, NumStyles)
	cbeam, err := NewMLP(sizes, rng.Fork())
	if err != nil {
		return nil, err
	}
	if _, err := cbeam.Train(popTrain, TrainOptions{Epochs: cfg.CloudEpochs, LearningRate: 0.01}, rng.Fork()); err != nil {
		return nil, fmt.Errorf("cBEAM training: %w", err)
	}

	// Compression stage: shrink for the edge.
	compressed, err := Compress(cbeam, cfg.Compress)
	if err != nil {
		return nil, fmt.Errorf("compress cBEAM: %w", err)
	}
	shipped, err := compressed.Decompress()
	if err != nil {
		return nil, fmt.Errorf("decompress cBEAM: %w", err)
	}

	// Edge stage: fine-tune on the driver's own data (stored in DDI).
	driverData, err := GenerateDataset(cfg.DriverSamples, driver, rng.Fork())
	if err != nil {
		return nil, fmt.Errorf("driver data: %w", err)
	}
	driverTrain, driverTest, err := driverData.Split(0.7)
	if err != nil {
		return nil, err
	}
	pbeam := shipped.Clone()
	topts := TrainOptions{Epochs: cfg.TransferEpochs, LearningRate: 0.02}
	if cfg.FreezeFeatureLayers {
		topts.FreezeBelow = pbeam.NumLayers() - 1
	}
	if _, err := pbeam.Train(driverTrain, topts, rng.Fork()); err != nil {
		return nil, fmt.Errorf("pBEAM transfer learning: %w", err)
	}

	res := &PBEAMResult{
		CBEAM:           cbeam,
		PBEAM:           pbeam,
		CompressedCBEAM: compressed,
		CompressStats:   compressed.Stats,
	}
	if res.CBEAMPopulationAccuracy, err = cbeam.Accuracy(popTest); err != nil {
		return nil, err
	}
	if res.CBEAMDriverAccuracy, err = cbeam.Accuracy(driverTest); err != nil {
		return nil, err
	}
	if res.CompressedDriverAccuracy, err = shipped.Accuracy(driverTest); err != nil {
		return nil, err
	}
	if res.PBEAMDriverAccuracy, err = pbeam.Accuracy(driverTest); err != nil {
		return nil, err
	}
	return res, nil
}

package models

import (
	"testing"

	"repro/internal/sim"
)

func benchModel(b *testing.B) (*MLP, *Dataset) {
	b.Helper()
	rng := sim.NewRNG(1)
	ds, err := GenerateDataset(1000, PopulationDriver(), rng.Fork())
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMLP([]int{FeatureDim, 32, 16, NumStyles}, rng.Fork())
	if err != nil {
		b.Fatal(err)
	}
	return m, ds
}

func BenchmarkPredict(b *testing.B) {
	m, ds := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(ds.X[i%ds.Len()]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	m, ds := benchModel(b)
	rng := sim.NewRNG(2)
	opts := TrainOptions{Epochs: 1, LearningRate: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Train(ds, opts, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeepCompress(b *testing.B) {
	m, ds := benchModel(b)
	rng := sim.NewRNG(3)
	if _, err := m.Train(ds, TrainOptions{Epochs: 5, LearningRate: 0.01}, rng); err != nil {
		b.Fatal(err)
	}
	opts := CompressOptions{PruneFraction: 0.6, CodebookBits: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(m, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	m, ds := benchModel(b)
	rng := sim.NewRNG(4)
	if _, err := m.Train(ds, TrainOptions{Epochs: 5, LearningRate: 0.01}, rng); err != nil {
		b.Fatal(err)
	}
	c, err := Compress(m, CompressOptions{PruneFraction: 0.6, CodebookBits: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(); err != nil {
			b.Fatal(err)
		}
	}
}

package models

import (
	"testing"
)

func TestCompressedMarshalRoundTrip(t *testing.T) {
	m, ds := trainedModel(t, 70)
	c, err := Compress(m, CompressOptions{PruneFraction: 0.6, CodebookBits: 5})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCompressed(wire)
	if err != nil {
		t.Fatal(err)
	}
	// The restored model must produce identical predictions.
	a, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pa, err := a.Predict(ds.X[i])
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.Predict(ds.X[i])
		if err != nil {
			t.Fatal(err)
		}
		for c := range pa {
			if pa[c] != pb[c] {
				t.Fatalf("prediction diverged after round trip at sample %d", i)
			}
		}
	}
	if got.Stats != c.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", got.Stats, c.Stats)
	}
	// The wire size should track the accounted compressed size plus gob's
	// fixed framing overhead (type descriptors, ~1 kB).
	if len(wire) > c.Stats.CompressedBytes*2+1024 {
		t.Fatalf("wire size %d far above accounted %d", len(wire), c.Stats.CompressedBytes)
	}
}

func TestUnmarshalCompressedErrors(t *testing.T) {
	if _, err := UnmarshalCompressed(nil); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := UnmarshalCompressed([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	empty := &Compressed{}
	if _, err := empty.Marshal(); err == nil {
		t.Fatal("layerless model marshaled")
	}
}

package models

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestEvaluateMatchesAccuracy(t *testing.T) {
	m, ds := trainedModel(t, 60)
	cm, err := Evaluate(m, ds)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := m.Accuracy(ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cm.Accuracy()-acc) > 1e-12 {
		t.Fatalf("confusion accuracy %v != Accuracy %v", cm.Accuracy(), acc)
	}
	if cm.Total() != ds.Len() {
		t.Fatalf("total = %d, want %d", cm.Total(), ds.Len())
	}
}

func TestEvaluateValidation(t *testing.T) {
	m, ds := trainedModel(t, 61)
	if _, err := Evaluate(nil, ds); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := Evaluate(m, nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
	bad := &Dataset{X: [][]float64{make([]float64, FeatureDim)}, Y: []int{99}}
	if _, err := Evaluate(m, bad); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestPrecisionRecallF1HandCase(t *testing.T) {
	// Two classes: actual 0 predicted as 0 eight times, as 1 twice;
	// actual 1 predicted as 1 six times, as 0 four times.
	cm := &ConfusionMatrix{Classes: 2, Counts: [][]int{{8, 2}, {4, 6}}}
	if got := cm.Accuracy(); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
	// Precision(0) = 8 / (8+4), Recall(0) = 8 / (8+2).
	if got := cm.Precision(0); math.Abs(got-8.0/12) > 1e-12 {
		t.Fatalf("precision(0) = %v", got)
	}
	if got := cm.Recall(0); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("recall(0) = %v", got)
	}
	p, r := 8.0/12, 0.8
	if got := cm.F1(0); math.Abs(got-2*p*r/(p+r)) > 1e-12 {
		t.Fatalf("f1(0) = %v", got)
	}
	if cm.MacroF1() <= 0 || cm.MacroF1() > 1 {
		t.Fatalf("macro f1 = %v", cm.MacroF1())
	}
}

func TestMetricsEdgeCases(t *testing.T) {
	cm := &ConfusionMatrix{Classes: 2, Counts: [][]int{{0, 0}, {0, 0}}}
	if cm.Accuracy() != 0 || cm.Precision(0) != 0 || cm.Recall(0) != 0 || cm.F1(0) != 0 {
		t.Fatal("empty matrix metrics nonzero")
	}
	if cm.Precision(-1) != 0 || cm.Recall(5) != 0 {
		t.Fatal("out-of-range class metrics nonzero")
	}
	empty := &ConfusionMatrix{}
	if empty.MacroF1() != 0 {
		t.Fatal("zero-class macro F1 nonzero")
	}
}

func TestTrainedModelPerClassMetricsReasonable(t *testing.T) {
	rng := sim.NewRNG(62)
	ds, _ := GenerateDataset(1500, PopulationDriver(), rng.Fork())
	train, test, _ := ds.Split(0.8)
	m, _ := NewMLP([]int{FeatureDim, 24, NumStyles}, rng.Fork())
	if _, err := m.Train(train, TrainOptions{Epochs: 20, LearningRate: 0.01}, rng.Fork()); err != nil {
		t.Fatal(err)
	}
	cm, err := Evaluate(m, test)
	if err != nil {
		t.Fatal(err)
	}
	for class := 0; class < NumStyles; class++ {
		if cm.F1(class) < 0.6 {
			t.Errorf("class %d F1 = %.3f, want >= 0.6", class, cm.F1(class))
		}
	}
	if cm.MacroF1() < 0.75 {
		t.Errorf("macro F1 = %.3f", cm.MacroF1())
	}
}

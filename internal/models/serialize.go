package models

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// wireCompressed is the gob schema for a Compressed model. It mirrors
// Compressed but is a separate type so the wire format stays stable even
// if the in-memory struct grows fields.
type wireCompressed struct {
	Version   int
	Sizes     []int
	Codebooks [][]float64
	Encoded   [][]byte
	Biases    [][]float64
	Stats     CompressStats
}

// wireVersion is bumped on breaking format changes.
const wireVersion = 1

// Marshal serializes the compressed model into the byte stream that ships
// from the cloud to the vehicle (paper Figure 9's "download" arrow).
func (c *Compressed) Marshal() ([]byte, error) {
	if len(c.Sizes) < 2 {
		return nil, fmt.Errorf("models: compressed model has no layers")
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(wireCompressed{
		Version:   wireVersion,
		Sizes:     c.Sizes,
		Codebooks: c.Codebooks,
		Encoded:   c.Encoded,
		Biases:    c.Biases,
		Stats:     c.Stats,
	}); err != nil {
		return nil, fmt.Errorf("models: encode compressed model: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalCompressed parses a shipped model.
func UnmarshalCompressed(data []byte) (*Compressed, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("models: empty model stream")
	}
	var w wireCompressed
	dec := gob.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("models: decode compressed model: %w", err)
	}
	if w.Version != wireVersion {
		return nil, fmt.Errorf("models: unsupported model wire version %d", w.Version)
	}
	c := &Compressed{
		Sizes:     w.Sizes,
		Codebooks: w.Codebooks,
		Encoded:   w.Encoded,
		Biases:    w.Biases,
		Stats:     w.Stats,
	}
	// Structural sanity: decompression validates layer shapes fully; here
	// we only reject obviously truncated streams early.
	if len(c.Sizes) < 2 || len(c.Encoded) != len(c.Sizes)-1 {
		return nil, fmt.Errorf("models: inconsistent model stream (%d sizes, %d layers)",
			len(c.Sizes), len(c.Encoded))
	}
	return c, nil
}

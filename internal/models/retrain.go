package models

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// PruneInPlace zeroes the smallest-magnitude fraction of each weight
// layer and returns the per-layer boolean masks (true = pruned). This is
// Deep Compression's first stage, exposed separately so pruning can be
// followed by mask-preserving retraining.
func PruneInPlace(m *MLP, fraction float64) ([][][]bool, error) {
	if m == nil {
		return nil, fmt.Errorf("models: nil model")
	}
	if fraction < 0 || fraction > 0.99 {
		return nil, fmt.Errorf("models: prune fraction %v outside [0, 0.99]", fraction)
	}
	masks := make([][][]bool, len(m.W))
	for l := range m.W {
		rows := len(m.W[l])
		masks[l] = make([][]bool, rows)
		var mags []float64
		for o := range m.W[l] {
			masks[l][o] = make([]bool, len(m.W[l][o]))
			for _, w := range m.W[l][o] {
				mags = append(mags, math.Abs(w))
			}
		}
		pruneN := int(float64(len(mags)) * fraction)
		if pruneN == 0 {
			continue
		}
		sort.Float64s(mags)
		threshold := mags[pruneN-1]
		budget := pruneN
		for o := range m.W[l] {
			for i, w := range m.W[l][o] {
				if budget > 0 && math.Abs(w) <= threshold {
					m.W[l][o][i] = 0
					masks[l][o][i] = true
					budget--
				}
			}
		}
	}
	return masks, nil
}

// applyMasks re-zeroes pruned weights (projected SGD step).
func applyMasks(m *MLP, masks [][][]bool) {
	for l := range masks {
		for o := range masks[l] {
			for i, pruned := range masks[l][o] {
				if pruned {
					m.W[l][o][i] = 0
				}
			}
		}
	}
}

// RetrainPruned fine-tunes a pruned model while keeping pruned weights at
// zero (the mask is enforced inside every gradient step) — Deep
// Compression's "learning only the important connections". It returns the
// final epoch's loss.
func RetrainPruned(m *MLP, masks [][][]bool, ds *Dataset, opts TrainOptions, rng *sim.RNG) (float64, error) {
	if err := opts.Validate(); err != nil {
		return 0, err
	}
	if len(masks) != len(m.W) {
		return 0, fmt.Errorf("models: mask layers %d != model layers %d", len(masks), len(m.W))
	}
	opts.Mask = masks
	loss, err := m.Train(ds, opts, rng)
	if err != nil {
		return 0, err
	}
	// Belt and braces: floating error cannot resurrect a skipped weight,
	// but re-projecting keeps the invariant explicit for callers.
	applyMasks(m, masks)
	return loss, nil
}

// CompressRetrained runs the full Deep-Compression recipe: prune, retrain
// the surviving connections, then weight-share and entropy-code. The input
// model is not modified.
func CompressRetrained(m *MLP, opts CompressOptions, retrain TrainOptions, ds *Dataset, rng *sim.RNG) (*Compressed, error) {
	if m == nil {
		return nil, fmt.Errorf("models: nil model")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("models: retraining needs data")
	}
	if rng == nil {
		return nil, fmt.Errorf("models: nil RNG")
	}
	work := m.Clone()
	masks, err := PruneInPlace(work, opts.PruneFraction)
	if err != nil {
		return nil, err
	}
	if _, err := RetrainPruned(work, masks, ds, retrain, rng); err != nil {
		return nil, fmt.Errorf("retrain after pruning: %w", err)
	}
	// Pruned weights are exactly zero, so compressing with the same
	// fraction re-selects precisely the masked set.
	return Compress(work, opts)
}

package models

import (
	"testing"

	"repro/internal/sim"
)

func TestPruneInPlaceFractionAndMasks(t *testing.T) {
	m, _ := trainedModel(t, 40)
	masks, err := PruneInPlace(m, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	zeros, total := 0, 0
	for l := range m.W {
		for o := range m.W[l] {
			for i, w := range m.W[l][o] {
				total++
				if w == 0 {
					zeros++
					if !masks[l][o][i] {
						t.Fatal("zero weight not masked")
					}
				} else if masks[l][o][i] {
					t.Fatal("mask covers surviving weight")
				}
			}
		}
	}
	frac := float64(zeros) / float64(total)
	if frac < 0.66 || frac > 0.72 {
		t.Fatalf("pruned fraction = %.3f, want ~0.7", frac)
	}
}

func TestPruneInPlaceValidation(t *testing.T) {
	if _, err := PruneInPlace(nil, 0.5); err == nil {
		t.Fatal("nil model accepted")
	}
	m, _ := NewMLP([]int{4, 2}, sim.NewRNG(1))
	if _, err := PruneInPlace(m, -0.1); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if _, err := PruneInPlace(m, 0.995); err == nil {
		t.Fatal("fraction > 0.99 accepted")
	}
	masks, err := PruneInPlace(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for l := range masks {
		for o := range masks[l] {
			for _, pruned := range masks[l][o] {
				if pruned {
					t.Fatal("zero fraction pruned something")
				}
			}
		}
	}
}

func TestRetrainPrunedKeepsMasksAndRecovers(t *testing.T) {
	rng := sim.NewRNG(41)
	ds, _ := GenerateDataset(1500, PopulationDriver(), rng.Fork())
	train, test, _ := ds.Split(0.8)
	m, _ := NewMLP([]int{FeatureDim, 24, 12, NumStyles}, rng.Fork())
	if _, err := m.Train(train, TrainOptions{Epochs: 20, LearningRate: 0.01}, rng.Fork()); err != nil {
		t.Fatal(err)
	}
	masks, err := PruneInPlace(m, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	prunedAcc, _ := m.Accuracy(test)
	if _, err := RetrainPruned(m, masks, train, TrainOptions{Epochs: 10, LearningRate: 0.01}, rng.Fork()); err != nil {
		t.Fatal(err)
	}
	retrainedAcc, _ := m.Accuracy(test)
	if retrainedAcc <= prunedAcc {
		t.Fatalf("retraining did not recover accuracy: %.3f -> %.3f", prunedAcc, retrainedAcc)
	}
	// Masked weights stayed zero.
	for l := range masks {
		for o := range masks[l] {
			for i, pruned := range masks[l][o] {
				if pruned && m.W[l][o][i] != 0 {
					t.Fatal("pruned weight resurrected during retraining")
				}
			}
		}
	}
}

func TestRetrainPrunedValidation(t *testing.T) {
	rng := sim.NewRNG(42)
	m, _ := NewMLP([]int{FeatureDim, 8, NumStyles}, rng.Fork())
	ds, _ := GenerateDataset(50, PopulationDriver(), rng.Fork())
	if _, err := RetrainPruned(m, nil, ds, TrainOptions{Epochs: 1, LearningRate: 0.01}, rng); err == nil {
		t.Fatal("mismatched masks accepted")
	}
	masks, _ := PruneInPlace(m, 0.5)
	if _, err := RetrainPruned(m, masks, ds, TrainOptions{}, rng); err == nil {
		t.Fatal("invalid options accepted")
	}
}

// TestCompressRetrainedBeatsPlainAtHighPrune is the Deep-Compression
// claim: retraining after pruning recovers most of the accuracy that
// aggressive pruning destroys.
func TestCompressRetrainedBeatsPlainAtHighPrune(t *testing.T) {
	rng := sim.NewRNG(43)
	ds, _ := GenerateDataset(1500, PopulationDriver(), rng.Fork())
	train, test, _ := ds.Split(0.8)
	m, _ := NewMLP([]int{FeatureDim, 24, 12, NumStyles}, rng.Fork())
	if _, err := m.Train(train, TrainOptions{Epochs: 20, LearningRate: 0.01}, rng.Fork()); err != nil {
		t.Fatal(err)
	}
	opts := CompressOptions{PruneFraction: 0.85, CodebookBits: 4}
	plain, err := Compress(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	retrained, err := CompressRetrained(m, opts, TrainOptions{Epochs: 10, LearningRate: 0.01}, train, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	pm, _ := plain.Decompress()
	rm, _ := retrained.Decompress()
	accPlain, _ := pm.Accuracy(test)
	accRetrained, _ := rm.Accuracy(test)
	if accRetrained <= accPlain {
		t.Fatalf("retrained compression (%.3f) did not beat plain (%.3f) at 85%% pruning",
			accRetrained, accPlain)
	}
	// Same pruning budget — size stays comparable.
	if retrained.Stats.PrunedFraction < 0.83 {
		t.Fatalf("retrained pruned fraction = %.3f, want ~0.85", retrained.Stats.PrunedFraction)
	}
}

func TestCompressRetrainedValidation(t *testing.T) {
	rng := sim.NewRNG(44)
	m, _ := NewMLP([]int{FeatureDim, 8, NumStyles}, rng.Fork())
	ds, _ := GenerateDataset(50, PopulationDriver(), rng.Fork())
	good := CompressOptions{PruneFraction: 0.5, CodebookBits: 4}
	topts := TrainOptions{Epochs: 1, LearningRate: 0.01}
	if _, err := CompressRetrained(nil, good, topts, ds, rng); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := CompressRetrained(m, CompressOptions{}, topts, ds, rng); err == nil {
		t.Fatal("invalid options accepted")
	}
	if _, err := CompressRetrained(m, good, topts, nil, rng); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := CompressRetrained(m, good, topts, ds, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
	// The input model must be untouched.
	before := m.Clone()
	if _, err := CompressRetrained(m, good, topts, ds, rng); err != nil {
		t.Fatal(err)
	}
	for l := range m.W {
		for o := range m.W[l] {
			for i := range m.W[l][o] {
				if m.W[l][o][i] != before.W[l][o][i] {
					t.Fatal("CompressRetrained mutated the input model")
				}
			}
		}
	}
}

package models

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func trainedModel(t *testing.T, seed int64) (*MLP, *Dataset) {
	t.Helper()
	rng := sim.NewRNG(seed)
	ds, err := GenerateDataset(1200, PopulationDriver(), rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMLP([]int{FeatureDim, 24, 12, NumStyles}, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(ds, TrainOptions{Epochs: 20, LearningRate: 0.01}, rng.Fork()); err != nil {
		t.Fatal(err)
	}
	return m, ds
}

func TestCompressOptionsValidate(t *testing.T) {
	bad := []CompressOptions{
		{PruneFraction: -0.1, CodebookBits: 4},
		{PruneFraction: 0.995, CodebookBits: 4},
		{PruneFraction: 0.5, CodebookBits: 0},
		{PruneFraction: 0.5, CodebookBits: 9},
		{PruneFraction: 0.5, CodebookBits: 4, KMeansIters: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate passed", i)
		}
	}
	if err := (CompressOptions{PruneFraction: 0.6, CodebookBits: 5}).Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func TestCompressReducesSize(t *testing.T) {
	m, _ := trainedModel(t, 20)
	c, err := Compress(m, CompressOptions{PruneFraction: 0.6, CodebookBits: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.CompressedBytes >= c.Stats.OriginalBytes {
		t.Fatalf("no size reduction: %d -> %d", c.Stats.OriginalBytes, c.Stats.CompressedBytes)
	}
	if c.Stats.Ratio < 2 {
		t.Fatalf("compression ratio = %.2f, want >= 2 at 60%%/5-bit", c.Stats.Ratio)
	}
	if math.Abs(c.Stats.PrunedFraction-0.6) > 0.02 {
		t.Fatalf("pruned fraction = %.3f, want ~0.6", c.Stats.PrunedFraction)
	}
}

func TestCompressedModelStillAccurate(t *testing.T) {
	m, ds := trainedModel(t, 21)
	before, err := m.Accuracy(ds)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compress(m, CompressOptions{PruneFraction: 0.5, CodebookBits: 5})
	if err != nil {
		t.Fatal(err)
	}
	restored, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	after, err := restored.Accuracy(ds)
	if err != nil {
		t.Fatal(err)
	}
	if after < before-0.08 {
		t.Fatalf("compression destroyed accuracy: %.3f -> %.3f", before, after)
	}
}

func TestHarderCompressionLosesMoreAccuracy(t *testing.T) {
	m, ds := trainedModel(t, 22)
	acc := func(prune float64, bits int) float64 {
		c, err := Compress(m, CompressOptions{PruneFraction: prune, CodebookBits: bits})
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		a, err := r.Accuracy(ds)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	gentle := acc(0.3, 6)
	brutal := acc(0.97, 1)
	if brutal > gentle {
		t.Fatalf("97%%/1-bit (%.3f) beat 30%%/6-bit (%.3f)", brutal, gentle)
	}
}

func TestHarderCompressionShrinksMore(t *testing.T) {
	m, _ := trainedModel(t, 23)
	c1, err := Compress(m, CompressOptions{PruneFraction: 0.3, CodebookBits: 6})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compress(m, CompressOptions{PruneFraction: 0.9, CodebookBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Stats.CompressedBytes >= c1.Stats.CompressedBytes {
		t.Fatalf("harder compression did not shrink more: %d vs %d",
			c2.Stats.CompressedBytes, c1.Stats.CompressedBytes)
	}
}

func TestDecompressRoundTripShape(t *testing.T) {
	m, _ := trainedModel(t, 24)
	c, err := Compress(m, CompressOptions{PruneFraction: 0.4, CodebookBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if r.ParamCount() != m.ParamCount() {
		t.Fatalf("param count changed: %d -> %d", m.ParamCount(), r.ParamCount())
	}
	// Every restored weight must be a codebook value.
	for l := range r.W {
		valid := map[float64]bool{}
		for _, v := range c.Codebooks[l] {
			valid[v] = true
		}
		for _, row := range r.W[l] {
			for _, w := range row {
				if !valid[w] {
					t.Fatalf("restored weight %v not in codebook", w)
				}
			}
		}
	}
}

func TestCompressZeroPruning(t *testing.T) {
	m, _ := trainedModel(t, 25)
	c, err := Compress(m, CompressOptions{PruneFraction: 0, CodebookBits: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.PrunedFraction != 0 {
		t.Fatalf("pruned fraction = %v with PruneFraction 0", c.Stats.PrunedFraction)
	}
	if _, err := c.Decompress(); err != nil {
		t.Fatal(err)
	}
}

func TestCompressNilModel(t *testing.T) {
	if _, err := Compress(nil, CompressOptions{PruneFraction: 0.5, CodebookBits: 4}); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestDecompressCorruptStructures(t *testing.T) {
	c := &Compressed{}
	if _, err := c.Decompress(); err == nil {
		t.Fatal("empty compressed model decompressed")
	}
	c = &Compressed{Sizes: []int{4, 2}}
	if _, err := c.Decompress(); err == nil {
		t.Fatal("missing layers decompressed")
	}
}

func TestKMeans1DProperties(t *testing.T) {
	if got := kmeans1D(nil, 4, 10); got != nil {
		t.Fatalf("kmeans of nothing = %v", got)
	}
	// Centroids always lie within [min, max] of the data.
	if err := quick.Check(func(seed int64) bool {
		rng := sim.NewRNG(seed)
		vals := make([]float64, 100)
		for i := range vals {
			vals[i] = rng.Uniform(-3, 3)
		}
		cents := kmeans1D(vals, 7, 15)
		for _, c := range cents {
			if c < -3 || c > 3 {
				return false
			}
		}
		return len(cents) == 7
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
	// Two well-separated clusters are found.
	vals := []float64{-5, -5.1, -4.9, 5, 5.1, 4.9}
	cents := kmeans1D(vals, 2, 20)
	if len(cents) != 2 {
		t.Fatalf("centroids = %v", cents)
	}
	lo, hi := math.Min(cents[0], cents[1]), math.Max(cents[0], cents[1])
	if math.Abs(lo+5) > 0.2 || math.Abs(hi-5) > 0.2 {
		t.Fatalf("centroids = %v, want ~{-5, 5}", cents)
	}
}

func TestKMeansFewerValuesThanClusters(t *testing.T) {
	cents := kmeans1D([]float64{1, 2}, 8, 10)
	if len(cents) != 2 {
		t.Fatalf("got %d centroids for 2 values", len(cents))
	}
}

package models

import (
	"testing"

	"repro/internal/sim"
)

func TestDatasetSplit(t *testing.T) {
	ds, err := GenerateDataset(100, PopulationDriver(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 70 || test.Len() != 30 {
		t.Fatalf("split = %d/%d, want 70/30", train.Len(), test.Len())
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := ds.Split(bad); err == nil {
			t.Errorf("Split(%v) succeeded", bad)
		}
	}
	tiny := &Dataset{X: [][]float64{{1}}, Y: []int{0}}
	if _, _, err := tiny.Split(0.5); err == nil {
		t.Fatal("degenerate split succeeded")
	}
}

func TestDatasetAppend(t *testing.T) {
	a, _ := GenerateDataset(10, PopulationDriver(), sim.NewRNG(2))
	b, _ := GenerateDataset(5, PopulationDriver(), sim.NewRNG(3))
	a.Append(b)
	if a.Len() != 15 {
		t.Fatalf("Len after append = %d", a.Len())
	}
}

func TestGenerateDatasetValidation(t *testing.T) {
	if _, err := GenerateDataset(0, PopulationDriver(), sim.NewRNG(1)); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := GenerateDataset(10, PopulationDriver(), nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestGenerateDatasetLabelCoverage(t *testing.T) {
	ds, _ := GenerateDataset(600, PopulationDriver(), sim.NewRNG(4))
	counts := make([]int, NumStyles)
	for _, y := range ds.Y {
		if y < 0 || y >= NumStyles {
			t.Fatalf("label %d out of range", y)
		}
		counts[y]++
	}
	for s, c := range counts {
		if c < 120 {
			t.Fatalf("style %d has only %d/600 samples", s, c)
		}
	}
	for _, x := range ds.X {
		if len(x) != FeatureDim {
			t.Fatalf("feature dim = %d", len(x))
		}
	}
}

func TestSyntheticDriverDeterministic(t *testing.T) {
	a := SyntheticDriver("alice", 42)
	b := SyntheticDriver("alice", 42)
	if a != b {
		t.Fatal("same seed produced different drivers")
	}
	c := SyntheticDriver("carol", 43)
	if a.ClassOffset == c.ClassOffset {
		t.Fatal("different seeds produced identical offsets")
	}
}

// TestBuildPBEAMPipeline is the §IV-E end-to-end check: the personalized
// model beats both the population model and its compressed form on the
// driver's own held-out data, and compression actually shrinks the model.
func TestBuildPBEAMPipeline(t *testing.T) {
	driver := SyntheticDriver("driver-7", 7)
	res, err := BuildPBEAM(PBEAMConfig{}, driver, sim.NewRNG(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.CBEAMPopulationAccuracy < 0.75 {
		t.Fatalf("cBEAM population accuracy = %.3f, want >= 0.75", res.CBEAMPopulationAccuracy)
	}
	if res.CompressStats.Ratio < 2 {
		t.Fatalf("compression ratio = %.2f, want >= 2", res.CompressStats.Ratio)
	}
	if res.PBEAMDriverAccuracy <= res.CBEAMDriverAccuracy {
		t.Fatalf("pBEAM (%.3f) did not beat cBEAM (%.3f) on driver data",
			res.PBEAMDriverAccuracy, res.CBEAMDriverAccuracy)
	}
	if res.PBEAMDriverAccuracy <= res.CompressedDriverAccuracy {
		t.Fatalf("pBEAM (%.3f) did not beat compressed cBEAM (%.3f) on driver data",
			res.PBEAMDriverAccuracy, res.CompressedDriverAccuracy)
	}
}

func TestBuildPBEAMFrozenFeatures(t *testing.T) {
	driver := SyntheticDriver("driver-9", 9)
	res, err := BuildPBEAM(PBEAMConfig{FreezeFeatureLayers: true}, driver, sim.NewRNG(101))
	if err != nil {
		t.Fatal(err)
	}
	// Frozen transfer must still help on driver data.
	if res.PBEAMDriverAccuracy <= res.CompressedDriverAccuracy {
		t.Fatalf("frozen pBEAM (%.3f) did not beat compressed cBEAM (%.3f)",
			res.PBEAMDriverAccuracy, res.CompressedDriverAccuracy)
	}
	// And the feature layers must be identical to the shipped model.
	shipped, err := res.CompressedCBEAM.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < res.PBEAM.NumLayers()-1; l++ {
		for o := range res.PBEAM.W[l] {
			for i := range res.PBEAM.W[l][o] {
				if res.PBEAM.W[l][o][i] != shipped.W[l][o][i] {
					t.Fatalf("frozen layer %d changed during transfer", l)
				}
			}
		}
	}
}

func TestBuildPBEAMNilRNG(t *testing.T) {
	if _, err := BuildPBEAM(PBEAMConfig{}, PopulationDriver(), nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

package models

import (
	"fmt"

	"repro/internal/sim"
)

// Driving-behavior classes predicted by cBEAM/pBEAM.
const (
	StyleCautious = iota
	StyleNormal
	StyleAggressive
	NumStyles
)

// FeatureDim is the number of telemetry features per sample: mean speed,
// speed variance, mean |accel|, accel variance, jerk, throttle
// aggressiveness, brake intensity, following-distance proxy.
const FeatureDim = 8

// Dataset is a labeled sample set.
type Dataset struct {
	X [][]float64
	Y []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Split partitions the dataset into train/test at the given fraction.
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("models: trainFrac %v outside (0,1)", trainFrac)
	}
	n := int(float64(len(d.X)) * trainFrac)
	if n == 0 || n == len(d.X) {
		return nil, nil, fmt.Errorf("models: split of %d samples at %v leaves an empty side", len(d.X), trainFrac)
	}
	return &Dataset{X: d.X[:n], Y: d.Y[:n]},
		&Dataset{X: d.X[n:], Y: d.Y[n:]}, nil
}

// Append merges other into d.
func (d *Dataset) Append(other *Dataset) {
	d.X = append(d.X, other.X...)
	d.Y = append(d.Y, other.Y...)
}

// styleProfile is the class-conditional mean of each feature. Values are
// roughly normalized telemetry (z-score-ish scales).
var styleProfiles = [NumStyles][FeatureDim]float64{
	StyleCautious:   {-0.8, -0.6, -0.9, -0.7, -0.8, -0.9, -0.5, 0.9},
	StyleNormal:     {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0},
	StyleAggressive: {0.9, 0.8, 1.0, 0.9, 1.1, 1.0, 0.8, -0.9},
}

// DriverProfile personalizes the population distribution: a driver shifts
// each class-conditional mean by its own per-class offset (their
// "aggressive" looks different from the population's "aggressive"), which
// is what makes a population model (cBEAM) miscalibrated for an individual
// and transfer learning (pBEAM) worthwhile.
type DriverProfile struct {
	// Name identifies the driver.
	Name string
	// ClassOffset shifts each feature's mean per behavior class.
	ClassOffset [NumStyles][FeatureDim]float64
	// Noise scales the within-class standard deviation (1 = population).
	Noise float64
}

// PopulationDriver returns the neutral profile used for cloud training.
func PopulationDriver() DriverProfile {
	return DriverProfile{Name: "population", Noise: 1}
}

// SyntheticDriver derives a personalized profile deterministically from a
// seed: per-class per-feature offsets and slightly different noise.
func SyntheticDriver(name string, seed int64) DriverProfile {
	rng := sim.NewRNG(seed)
	p := DriverProfile{Name: name, Noise: rng.Uniform(0.8, 1.2)}
	for s := range p.ClassOffset {
		for f := range p.ClassOffset[s] {
			p.ClassOffset[s][f] = rng.Uniform(-1.1, 1.1)
		}
	}
	return p
}

// GenerateDataset draws n labeled samples for the given driver. Class
// priors are uniform. The generator is deterministic given the RNG state.
func GenerateDataset(n int, driver DriverProfile, rng *sim.RNG) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("models: sample count must be positive, got %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("models: nil RNG")
	}
	noise := driver.Noise
	if noise <= 0 {
		noise = 1
	}
	ds := &Dataset{X: make([][]float64, 0, n), Y: make([]int, 0, n)}
	for i := 0; i < n; i++ {
		style := rng.Intn(NumStyles)
		x := make([]float64, FeatureDim)
		for f := 0; f < FeatureDim; f++ {
			x[f] = styleProfiles[style][f] + driver.ClassOffset[style][f] + rng.Normal(0, 0.55*noise)
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, style)
	}
	return ds, nil
}

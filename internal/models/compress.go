package models

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/huffman"
)

// CompressOptions controls the Deep-Compression pipeline (Han et al.,
// cited by the paper as the basis of libvdap's model compression).
type CompressOptions struct {
	// PruneFraction of smallest-magnitude weights is zeroed (0..0.99).
	PruneFraction float64
	// CodebookBits sets the shared-weight cluster count to 2^bits (1..8).
	CodebookBits int
	// KMeansIters bounds the quantization refinement. Zero means 20.
	KMeansIters int
}

// Validate reports option errors.
func (o CompressOptions) Validate() error {
	if o.PruneFraction < 0 || o.PruneFraction > 0.99 {
		return fmt.Errorf("models: prune fraction %v outside [0, 0.99]", o.PruneFraction)
	}
	if o.CodebookBits < 1 || o.CodebookBits > 8 {
		return fmt.Errorf("models: codebook bits %d outside [1, 8]", o.CodebookBits)
	}
	if o.KMeansIters < 0 {
		return fmt.Errorf("models: negative k-means iterations")
	}
	return nil
}

// Compressed is a pruned, weight-shared, entropy-coded model. Index 0 of
// each codebook is reserved for pruned (zero) weights.
type Compressed struct {
	Sizes []int
	// Codebooks[l] holds the shared weight values for layer l.
	Codebooks [][]float64
	// Encoded[l] is the Huffman-coded per-weight codebook index stream.
	Encoded [][]byte
	// Biases are kept dense (they are a negligible fraction of parameters).
	Biases [][]float64
	// Stats summarizes the size accounting.
	Stats CompressStats
}

// CompressStats reports the compression outcome.
type CompressStats struct {
	OriginalBytes   int
	CompressedBytes int
	Ratio           float64 // original / compressed, >1 is a gain
	PrunedFraction  float64 // weights actually zeroed
	CodebookBits    int
}

// Compress applies prune → weight-share → Huffman to a trained model.
func Compress(m *MLP, opts CompressOptions) (*Compressed, error) {
	if m == nil {
		return nil, fmt.Errorf("models: nil model")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	iters := opts.KMeansIters
	if iters == 0 {
		iters = 20
	}

	c := &Compressed{Sizes: append([]int(nil), m.Sizes...), Stats: CompressStats{CodebookBits: opts.CodebookBits}}
	totalWeights, prunedWeights := 0, 0
	compressedBytes := 0

	for l := range m.W {
		flat := flatten(m.W[l])
		totalWeights += len(flat)

		// 1. Magnitude pruning: zero the smallest |w|, with a budget so
		// magnitude ties do not over-prune past the requested fraction.
		pruneN := int(float64(len(flat)) * opts.PruneFraction)
		if pruneN > 0 {
			mags := make([]float64, len(flat))
			for i, w := range flat {
				mags[i] = math.Abs(w)
			}
			sort.Float64s(mags)
			threshold := mags[pruneN-1]
			budget := pruneN
			for i, w := range flat {
				if budget > 0 && math.Abs(w) <= threshold {
					flat[i] = 0
					budget--
				}
			}
			prunedWeights += pruneN - budget
		}

		// 2. Weight sharing: k-means over the surviving weights.
		k := 1 << opts.CodebookBits
		codebook := kmeans1D(nonZero(flat), k-1, iters)
		// Reserve index 0 for zero; codebook entries shift by one.
		full := make([]float64, 1, len(codebook)+1)
		full[0] = 0
		full = append(full, codebook...)

		indices := make([]byte, len(flat))
		for i, w := range flat {
			if w == 0 {
				indices[i] = 0
				continue
			}
			indices[i] = byte(1 + nearestIdx(codebook, w))
		}

		// 3. Entropy coding of the index stream.
		enc, err := huffman.Encode(indices)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", l, err)
		}
		c.Codebooks = append(c.Codebooks, full)
		c.Encoded = append(c.Encoded, enc)
		c.Biases = append(c.Biases, append([]float64(nil), m.B[l]...))
		compressedBytes += len(enc) + 4*len(full) + 4*len(m.B[l])
	}

	c.Stats.OriginalBytes = m.SizeBytes()
	c.Stats.CompressedBytes = compressedBytes
	if compressedBytes > 0 {
		c.Stats.Ratio = float64(c.Stats.OriginalBytes) / float64(compressedBytes)
	}
	if totalWeights > 0 {
		c.Stats.PrunedFraction = float64(prunedWeights) / float64(totalWeights)
	}
	return c, nil
}

// Decompress reconstructs a dense MLP from the compressed form. Weights
// take their shared codebook values; pruned weights are zero.
func (c *Compressed) Decompress() (*MLP, error) {
	if len(c.Sizes) < 2 {
		return nil, fmt.Errorf("models: compressed model has no layer sizes")
	}
	m := &MLP{Sizes: append([]int(nil), c.Sizes...)}
	for l := 0; l < len(c.Sizes)-1; l++ {
		in, out := c.Sizes[l], c.Sizes[l+1]
		if l >= len(c.Encoded) || l >= len(c.Codebooks) || l >= len(c.Biases) {
			return nil, fmt.Errorf("models: compressed model missing layer %d", l)
		}
		indices, err := huffman.Decode(c.Encoded[l])
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", l, err)
		}
		if len(indices) != in*out {
			return nil, fmt.Errorf("models: layer %d has %d indices, want %d", l, len(indices), in*out)
		}
		codebook := c.Codebooks[l]
		wl := make([][]float64, out)
		for o := 0; o < out; o++ {
			row := make([]float64, in)
			for i := 0; i < in; i++ {
				idx := int(indices[o*in+i])
				if idx >= len(codebook) {
					return nil, fmt.Errorf("models: layer %d index %d outside codebook of %d", l, idx, len(codebook))
				}
				row[i] = codebook[idx]
			}
			wl[o] = row
		}
		m.W = append(m.W, wl)
		if len(c.Biases[l]) != out {
			return nil, fmt.Errorf("models: layer %d has %d biases, want %d", l, len(c.Biases[l]), out)
		}
		m.B = append(m.B, append([]float64(nil), c.Biases[l]...))
	}
	return m, nil
}

func flatten(w [][]float64) []float64 {
	n := 0
	for _, row := range w {
		n += len(row)
	}
	out := make([]float64, 0, n)
	for _, row := range w {
		out = append(out, row...)
	}
	return out
}

func nonZero(ws []float64) []float64 {
	out := make([]float64, 0, len(ws))
	for _, w := range ws {
		if w != 0 {
			out = append(out, w)
		}
	}
	return out
}

// kmeans1D clusters values into at most k centroids with deterministic
// linear initialization over [min, max], the initialization Deep
// Compression found most robust.
func kmeans1D(values []float64, k, iters int) []float64 {
	if len(values) == 0 {
		return nil
	}
	if k <= 0 {
		k = 1
	}
	if k > len(values) {
		k = len(values)
	}
	minV, maxV := values[0], values[0]
	for _, v := range values[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	centroids := make([]float64, k)
	if k == 1 {
		centroids[0] = (minV + maxV) / 2
	} else {
		for i := range centroids {
			centroids[i] = minV + (maxV-minV)*float64(i)/float64(k-1)
		}
	}
	sums := make([]float64, k)
	counts := make([]int, k)
	for iter := 0; iter < iters; iter++ {
		for i := range sums {
			sums[i], counts[i] = 0, 0
		}
		for _, v := range values {
			c := nearestIdx(centroids, v)
			sums[c] += v
			counts[c]++
		}
		moved := false
		for i := range centroids {
			if counts[i] == 0 {
				continue
			}
			next := sums[i] / float64(counts[i])
			if next != centroids[i] {
				centroids[i] = next
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return centroids
}

func nearestIdx(centroids []float64, v float64) int {
	best, bestD := 0, math.Inf(1)
	for i, c := range centroids {
		if d := math.Abs(c - v); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

package models

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestNewMLPValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := NewMLP([]int{4}, rng); err == nil {
		t.Fatal("single-layer spec accepted")
	}
	if _, err := NewMLP([]int{4, 0, 3}, rng); err == nil {
		t.Fatal("zero-width layer accepted")
	}
	if _, err := NewMLP([]int{4, 3}, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestMLPShapes(t *testing.T) {
	m, err := NewMLP([]int{8, 16, 3}, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLayers() != 2 {
		t.Fatalf("NumLayers = %d", m.NumLayers())
	}
	wantParams := 8*16 + 16 + 16*3 + 3
	if m.ParamCount() != wantParams {
		t.Fatalf("ParamCount = %d, want %d", m.ParamCount(), wantParams)
	}
	if m.SizeBytes() != wantParams*4 {
		t.Fatalf("SizeBytes = %d", m.SizeBytes())
	}
}

func TestPredictSoftmaxProperties(t *testing.T) {
	m, _ := NewMLP([]int{4, 8, 3}, sim.NewRNG(3))
	probs, err := m.Predict([]float64{0.5, -0.2, 0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v outside [0,1]", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if _, err := m.Predict([]float64{1, 2}); err == nil {
		t.Fatal("wrong input size accepted")
	}
}

func TestTrainLearnsSeparableData(t *testing.T) {
	rng := sim.NewRNG(4)
	ds, err := GenerateDataset(1500, PopulationDriver(), rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewMLP([]int{FeatureDim, 24, NumStyles}, rng.Fork())
	before, _ := m.Accuracy(test)
	loss, err := m.Train(train, TrainOptions{Epochs: 25, LearningRate: 0.01}, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	after, err := m.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if after < 0.80 {
		t.Fatalf("accuracy after training = %.3f (was %.3f), want >= 0.80; loss %.3f", after, before, loss)
	}
	if after <= before {
		t.Fatalf("training did not improve accuracy: %.3f -> %.3f", before, after)
	}
}

func TestTrainLossDecreases(t *testing.T) {
	rng := sim.NewRNG(5)
	ds, _ := GenerateDataset(600, PopulationDriver(), rng.Fork())
	m, _ := NewMLP([]int{FeatureDim, 16, NumStyles}, rng.Fork())
	l1, err := m.Train(ds, TrainOptions{Epochs: 1, LearningRate: 0.01}, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	l2, err := m.Train(ds, TrainOptions{Epochs: 10, LearningRate: 0.01}, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	if l2 >= l1 {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", l1, l2)
	}
}

func TestTrainOptionsValidate(t *testing.T) {
	bad := []TrainOptions{
		{},
		{Epochs: 1},
		{Epochs: 1, LearningRate: -1},
		{Epochs: 1, LearningRate: 0.1, FreezeBelow: -1},
		{Epochs: 1, LearningRate: 0.1, L2: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate passed", i)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	rng := sim.NewRNG(6)
	m, _ := NewMLP([]int{FeatureDim, 8, NumStyles}, rng.Fork())
	good := TrainOptions{Epochs: 1, LearningRate: 0.01}
	if _, err := m.Train(nil, good, rng); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := m.Train(&Dataset{}, good, rng); err == nil {
		t.Fatal("empty dataset accepted")
	}
	ds, _ := GenerateDataset(10, PopulationDriver(), rng.Fork())
	if _, err := m.Train(ds, good, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
	wrong := &Dataset{X: [][]float64{{1, 2}}, Y: []int{0}}
	if _, err := m.Train(wrong, good, rng); err == nil {
		t.Fatal("wrong feature dim accepted")
	}
}

func TestFreezeBelowKeepsLayersFixed(t *testing.T) {
	rng := sim.NewRNG(7)
	ds, _ := GenerateDataset(300, PopulationDriver(), rng.Fork())
	m, _ := NewMLP([]int{FeatureDim, 12, NumStyles}, rng.Fork())
	frozenBefore := m.Clone()
	opts := TrainOptions{Epochs: 3, LearningRate: 0.05, FreezeBelow: 1}
	if _, err := m.Train(ds, opts, rng.Fork()); err != nil {
		t.Fatal(err)
	}
	// Layer 0 must be untouched; layer 1 must have moved.
	for o := range m.W[0] {
		for i := range m.W[0][o] {
			if m.W[0][o][i] != frozenBefore.W[0][o][i] {
				t.Fatal("frozen layer 0 weight changed")
			}
		}
	}
	moved := false
	for o := range m.W[1] {
		for i := range m.W[1][o] {
			if m.W[1][o][i] != frozenBefore.W[1][o][i] {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("unfrozen output layer did not change")
	}
}

func TestCloneIndependence(t *testing.T) {
	m, _ := NewMLP([]int{4, 6, 2}, sim.NewRNG(8))
	c := m.Clone()
	c.W[0][0][0] = 999
	c.B[1][0] = 999
	if m.W[0][0][0] == 999 || m.B[1][0] == 999 {
		t.Fatal("Clone shares storage")
	}
}

func TestAccuracyErrors(t *testing.T) {
	m, _ := NewMLP([]int{4, 2}, sim.NewRNG(9))
	if _, err := m.Accuracy(nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := m.Accuracy(&Dataset{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	bad := &Dataset{X: [][]float64{{1}}, Y: []int{0}}
	if _, err := m.Accuracy(bad); err == nil {
		t.Fatal("wrong-dim dataset accepted")
	}
}

func TestL2RegularizationShrinksWeights(t *testing.T) {
	rng := sim.NewRNG(10)
	ds, _ := GenerateDataset(500, PopulationDriver(), rng.Fork())
	norm := func(m *MLP) float64 {
		var s float64
		for l := range m.W {
			for _, row := range m.W[l] {
				for _, w := range row {
					s += w * w
				}
			}
		}
		return math.Sqrt(s)
	}
	plain, _ := NewMLP([]int{FeatureDim, 16, NumStyles}, sim.NewRNG(11))
	reg := plain.Clone()
	if _, err := plain.Train(ds, TrainOptions{Epochs: 15, LearningRate: 0.01}, rng.Fork()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Train(ds, TrainOptions{Epochs: 15, LearningRate: 0.01, L2: 0.01}, rng.Fork()); err != nil {
		t.Fatal(err)
	}
	if norm(reg) >= norm(plain) {
		t.Fatalf("L2 did not shrink weights: %v >= %v", norm(reg), norm(plain))
	}
}

package models

import "fmt"

// ConfusionMatrix counts predictions: Counts[actual][predicted].
type ConfusionMatrix struct {
	Classes int
	Counts  [][]int
}

// Evaluate runs the model over a dataset and tallies the confusion matrix.
func Evaluate(m *MLP, ds *Dataset) (*ConfusionMatrix, error) {
	if m == nil {
		return nil, fmt.Errorf("models: nil model")
	}
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("models: empty dataset")
	}
	classes := m.Sizes[len(m.Sizes)-1]
	cm := &ConfusionMatrix{Classes: classes, Counts: make([][]int, classes)}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, classes)
	}
	for i := range ds.X {
		if ds.Y[i] < 0 || ds.Y[i] >= classes {
			return nil, fmt.Errorf("models: label %d outside %d classes", ds.Y[i], classes)
		}
		pred, err := m.Classify(ds.X[i])
		if err != nil {
			return nil, err
		}
		cm.Counts[ds.Y[i]][pred]++
	}
	return cm, nil
}

// Total returns the number of evaluated samples.
func (c *ConfusionMatrix) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the overall hit rate.
func (c *ConfusionMatrix) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	hit := 0
	for i := range c.Counts {
		hit += c.Counts[i][i]
	}
	return float64(hit) / float64(total)
}

// Precision returns TP / (TP + FP) for a class (0 when never predicted).
func (c *ConfusionMatrix) Precision(class int) float64 {
	if class < 0 || class >= c.Classes {
		return 0
	}
	predicted := 0
	for actual := 0; actual < c.Classes; actual++ {
		predicted += c.Counts[actual][class]
	}
	if predicted == 0 {
		return 0
	}
	return float64(c.Counts[class][class]) / float64(predicted)
}

// Recall returns TP / (TP + FN) for a class (0 when never present).
func (c *ConfusionMatrix) Recall(class int) float64 {
	if class < 0 || class >= c.Classes {
		return 0
	}
	actual := 0
	for pred := 0; pred < c.Classes; pred++ {
		actual += c.Counts[class][pred]
	}
	if actual == 0 {
		return 0
	}
	return float64(c.Counts[class][class]) / float64(actual)
}

// F1 returns the harmonic mean of precision and recall for a class.
func (c *ConfusionMatrix) F1(class int) float64 {
	p, r := c.Precision(class), c.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 averages F1 over all classes.
func (c *ConfusionMatrix) MacroF1() float64 {
	if c.Classes == 0 {
		return 0
	}
	var sum float64
	for class := 0; class < c.Classes; class++ {
		sum += c.F1(class)
	}
	return sum / float64(c.Classes)
}

// Package models implements the AI substrate of libvdap: real multi-layer
// perceptrons trained by stochastic gradient descent, a synthetic
// driving-behavior dataset, Deep-Compression-style model compression
// (magnitude pruning, k-means weight sharing, Huffman coding), and the
// cloud→edge pBEAM transfer-learning pipeline from the paper's §IV-E.
//
// Networks here are deliberately small — the paper's pipeline (pre-train a
// common model in the cloud, compress it, fine-tune it on the vehicle into
// a personalized model) is what is reproduced, with real gradients and real
// compression arithmetic, not the absolute scale of Inception-v3.
package models

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// MLP is a fully connected network with ReLU hidden layers and a softmax
// output trained with cross-entropy loss.
type MLP struct {
	// Sizes holds layer widths, input first, classes last.
	Sizes []int
	// W[l][o][i] is the weight from unit i of layer l to unit o of l+1.
	W [][][]float64
	// B[l][o] is the bias of unit o of layer l+1.
	B [][]float64
}

// NewMLP builds a network with the given layer sizes and small random
// initial weights (He initialization).
func NewMLP(sizes []int, rng *sim.RNG) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("models: need at least input and output layers, got %v", sizes)
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("models: non-positive layer size in %v", sizes)
		}
	}
	if rng == nil {
		return nil, fmt.Errorf("models: nil RNG")
	}
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		scale := math.Sqrt(2 / float64(in))
		wl := make([][]float64, out)
		for o := range wl {
			row := make([]float64, in)
			for i := range row {
				row[i] = rng.Normal(0, scale)
			}
			wl[o] = row
		}
		m.W = append(m.W, wl)
		m.B = append(m.B, make([]float64, out))
	}
	return m, nil
}

// NumLayers returns the number of weight layers.
func (m *MLP) NumLayers() int { return len(m.W) }

// ParamCount returns the total number of weights and biases.
func (m *MLP) ParamCount() int {
	n := 0
	for l := range m.W {
		for _, row := range m.W[l] {
			n += len(row)
		}
		n += len(m.B[l])
	}
	return n
}

// SizeBytes returns the dense storage footprint at 4 bytes per parameter
// (float32 deployment format), the baseline Deep Compression reduces.
func (m *MLP) SizeBytes() int { return m.ParamCount() * 4 }

// Clone returns a deep copy.
func (m *MLP) Clone() *MLP {
	out := &MLP{Sizes: append([]int(nil), m.Sizes...)}
	out.W = make([][][]float64, len(m.W))
	out.B = make([][]float64, len(m.B))
	for l := range m.W {
		out.W[l] = make([][]float64, len(m.W[l]))
		for o := range m.W[l] {
			out.W[l][o] = append([]float64(nil), m.W[l][o]...)
		}
		out.B[l] = append([]float64(nil), m.B[l]...)
	}
	return out
}

// forward runs the network, returning every layer's post-activation values
// (index 0 is the input itself).
func (m *MLP) forward(x []float64) [][]float64 {
	acts := make([][]float64, 0, len(m.W)+1)
	acts = append(acts, x)
	cur := x
	for l := range m.W {
		next := make([]float64, len(m.W[l]))
		for o := range m.W[l] {
			sum := m.B[l][o]
			row := m.W[l][o]
			for i, v := range cur {
				sum += row[i] * v
			}
			next[o] = sum
		}
		if l < len(m.W)-1 {
			for o := range next {
				if next[o] < 0 {
					next[o] = 0 // ReLU
				}
			}
		}
		acts = append(acts, next)
		cur = next
	}
	// Softmax on the output layer, numerically stabilized.
	out := acts[len(acts)-1]
	maxV := out[0]
	for _, v := range out[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for o, v := range out {
		out[o] = math.Exp(v - maxV)
		sum += out[o]
	}
	for o := range out {
		out[o] /= sum
	}
	return acts
}

// Predict returns class probabilities for input x.
func (m *MLP) Predict(x []float64) ([]float64, error) {
	if len(x) != m.Sizes[0] {
		return nil, fmt.Errorf("models: input size %d, model expects %d", len(x), m.Sizes[0])
	}
	acts := m.forward(append([]float64(nil), x...))
	return acts[len(acts)-1], nil
}

// Classify returns the argmax class for input x.
func (m *MLP) Classify(x []float64) (int, error) {
	probs, err := m.Predict(x)
	if err != nil {
		return 0, err
	}
	best := 0
	for c, p := range probs {
		if p > probs[best] {
			best = c
		}
	}
	return best, nil
}

// TrainOptions controls SGD.
type TrainOptions struct {
	Epochs       int
	LearningRate float64
	// FreezeBelow, when > 0, skips gradient updates for weight layers
	// below the given index — the transfer-learning mode where early
	// feature layers stay fixed and only the head adapts.
	FreezeBelow int
	// L2 is the weight-decay coefficient (0 disables).
	L2 float64
	// Mask, when non-nil, marks pruned weights (Mask[l][o][i] true) that
	// must stay at zero: gradient updates skip them. This is the
	// sparsity-preserving retraining mode of Deep Compression.
	Mask [][][]bool
}

// Validate reports option errors.
func (o TrainOptions) Validate() error {
	if o.Epochs <= 0 {
		return fmt.Errorf("models: epochs must be positive, got %d", o.Epochs)
	}
	if o.LearningRate <= 0 {
		return fmt.Errorf("models: learning rate must be positive, got %v", o.LearningRate)
	}
	if o.FreezeBelow < 0 {
		return fmt.Errorf("models: FreezeBelow must be >= 0, got %d", o.FreezeBelow)
	}
	if o.L2 < 0 {
		return fmt.Errorf("models: L2 must be >= 0, got %v", o.L2)
	}
	return nil
}

// Train runs plain SGD over the dataset (one sample at a time, shuffled
// each epoch) and returns the final average cross-entropy loss.
func (m *MLP) Train(ds *Dataset, opts TrainOptions, rng *sim.RNG) (float64, error) {
	if err := opts.Validate(); err != nil {
		return 0, err
	}
	if ds == nil || len(ds.X) == 0 {
		return 0, fmt.Errorf("models: empty dataset")
	}
	if rng == nil {
		return 0, fmt.Errorf("models: nil RNG")
	}
	if len(ds.X[0]) != m.Sizes[0] {
		return 0, fmt.Errorf("models: dataset feature dim %d, model expects %d", len(ds.X[0]), m.Sizes[0])
	}
	var lastLoss float64
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		perm := rng.Perm(len(ds.X))
		var lossSum float64
		for _, idx := range perm {
			lossSum += m.step(ds.X[idx], ds.Y[idx], opts)
		}
		lastLoss = lossSum / float64(len(ds.X))
	}
	return lastLoss, nil
}

// step performs one SGD update and returns the sample loss.
func (m *MLP) step(x []float64, label int, opts TrainOptions) float64 {
	acts := m.forward(append([]float64(nil), x...))
	probs := acts[len(acts)-1]
	loss := -math.Log(math.Max(probs[label], 1e-12))

	// Output delta for softmax + cross-entropy: p - onehot.
	delta := append([]float64(nil), probs...)
	delta[label]--

	for l := len(m.W) - 1; l >= 0; l-- {
		prev := acts[l]
		var nextDelta []float64
		if l > 0 {
			nextDelta = make([]float64, len(prev))
		}
		frozen := l < opts.FreezeBelow
		for o := range m.W[l] {
			row := m.W[l][o]
			d := delta[o]
			if nextDelta != nil {
				for i := range row {
					nextDelta[i] += row[i] * d
				}
			}
			if !frozen {
				var rowMask []bool
				if opts.Mask != nil && l < len(opts.Mask) && o < len(opts.Mask[l]) {
					rowMask = opts.Mask[l][o]
				}
				for i := range row {
					if rowMask != nil && i < len(rowMask) && rowMask[i] {
						continue // pruned connection stays zero
					}
					grad := d * prev[i]
					if opts.L2 > 0 {
						grad += opts.L2 * row[i]
					}
					row[i] -= opts.LearningRate * grad
				}
				m.B[l][o] -= opts.LearningRate * d
			}
		}
		if nextDelta != nil {
			// Backprop through ReLU: zero where the activation was zero.
			for i := range nextDelta {
				if acts[l][i] <= 0 {
					nextDelta[i] = 0
				}
			}
			delta = nextDelta
		}
	}
	return loss
}

// Accuracy returns the fraction of dataset samples classified correctly.
func (m *MLP) Accuracy(ds *Dataset) (float64, error) {
	if ds == nil || len(ds.X) == 0 {
		return 0, fmt.Errorf("models: empty dataset")
	}
	correct := 0
	for i := range ds.X {
		c, err := m.Classify(ds.X[i])
		if err != nil {
			return 0, err
		}
		if c == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.X)), nil
}

// Package repro's root benchmarks regenerate each paper artifact under
// `go test -bench=.`; every table and figure has one benchmark, and custom
// metrics report the headline numbers alongside ns/op.
package repro

import (
	"testing"
	"time"

	"repro/internal/experiments"
)

// BenchmarkTable1_AlgorithmLatency regenerates Table I (E1).
func BenchmarkTable1_AlgorithmLatency(b *testing.B) {
	var rows []experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.LatencyMS, shortName(r.Name)+"_ms")
	}
}

func shortName(s string) string {
	switch s {
	case "Lane Detection":
		return "lane"
	case "Vehicle Detection (Haar)":
		return "haar"
	case "Vehicle Detection (TensorFlow)":
		return "dnn"
	default:
		return s
	}
}

// BenchmarkFigure2_VideoLoss regenerates Figure 2 (E2) with one-minute
// streams per operating point (the shape is stable from ~30 GOPs up).
func BenchmarkFigure2_VideoLoss(b *testing.B) {
	var rows []experiments.Figure2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunFigure2(int64(42+i), time.Minute)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.PacketLoss, r.Scenario+"_"+r.Profile+"_pkt")
		b.ReportMetric(r.FrameLoss, r.Scenario+"_"+r.Profile+"_frm")
	}
}

// BenchmarkFigure3_InceptionProcessors regenerates Figure 3 (E3).
func BenchmarkFigure3_InceptionProcessors(b *testing.B) {
	var rows []experiments.Figure3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunFigure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.TimeMS, r.Label+"_ms")
	}
}

// BenchmarkDSF_SchedulerAblation regenerates E4.
func BenchmarkDSF_SchedulerAblation(b *testing.B) {
	var rows []experiments.DSFRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunDSFAblation(8)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Workload == "alpr" {
			b.ReportMetric(r.MakespanMS, r.Policy+"_alpr_ms")
		}
	}
}

// BenchmarkElastic_PipelineSelection regenerates E5.
func BenchmarkElastic_PipelineSelection(b *testing.B) {
	var rows []experiments.ElasticRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunElastic()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		label := "idle"
		if r.EdgeBusy {
			label = "busy"
		}
		b.ReportMetric(r.LatencyMS, label+"_"+f0(r.SpeedMPH)+"mph_ms")
	}
}

func f0(v float64) string {
	switch v {
	case 0:
		return "0"
	case 35:
		return "35"
	case 70:
		return "70"
	default:
		return "x"
	}
}

// BenchmarkOffload_ThreeArchitectures regenerates E6.
func BenchmarkOffload_ThreeArchitectures(b *testing.B) {
	var rows []experiments.ArchRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunArchComparison()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Workload == "vehicle-detect-dnn" && r.SpeedMPH == 35 {
			b.ReportMetric(r.OnboardMS, "dnn35_onboard_ms")
			b.ReportMetric(r.EdgeMS, "dnn35_edge_ms")
			b.ReportMetric(r.CloudMS, "dnn35_cloud_ms")
		}
	}
}

// BenchmarkPBEAM_Compression regenerates E7's sweep.
func BenchmarkPBEAM_Compression(b *testing.B) {
	var rows []experiments.CompressRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunCompressionSweep(int64(7 + i))
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Ratio, "max_ratio_x")
	b.ReportMetric(last.AccAfter, "acc_at_max")
}

// BenchmarkPBEAM_Pipeline regenerates E7b.
func BenchmarkPBEAM_Pipeline(b *testing.B) {
	var rows []experiments.PBEAMRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunPBEAMPipeline(int64(11+i), 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].PBEAMAcc-rows[0].CompressedAcc, "personalization_gain")
}

// BenchmarkDDI_TieredStore regenerates E8.
func BenchmarkDDI_TieredStore(b *testing.B) {
	var rows []experiments.DDIRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunDDIBench(b.TempDir(), int64(5+i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].AvgMS, "cache_hit_ms")
	b.ReportMetric(rows[1].AvgMS, "disk_path_ms")
}

// BenchmarkCollab_ConvoySharing regenerates E9.
func BenchmarkCollab_ConvoySharing(b *testing.B) {
	var rows []experiments.CollabRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunCollaboration()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Collaborative && r.Convoy == 8 {
			b.ReportMetric(r.SavingsX, "convoy8_savings_x")
		}
	}
}

package main

import (
	"testing"
	"time"

	"repro/internal/ddi"
)

func seedStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	store, err := ddi.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for i := 1; i <= 5; i++ {
		rec := ddi.Record{
			Source:  ddi.SourceOBD,
			At:      time.Duration(i) * time.Second,
			X:       float64(i * 100),
			Payload: []byte(`{"rpm":2000}`),
		}
		if _, err := store.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunCount(t *testing.T) {
	dir := seedStore(t)
	if err := run([]string{"-dir", dir, "count"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunQueryAndGet(t *testing.T) {
	dir := seedStore(t)
	if err := run([]string{"-dir", dir, "query", "-source", "obd", "-from", "2", "-to", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", dir, "get", "-id", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", dir, "get", "-id", "999"}); err == nil {
		t.Fatal("missing record reported success")
	}
}

func TestRunSegmentsAndAgg(t *testing.T) {
	dir := seedStore(t)

	// Seal the memtable so `segments` has something to list.
	store, err := ddi.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	if err := run([]string{"-dir", dir, "segments"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", dir, "agg", "-column", "x", "-from", "1", "-to", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", dir, "agg", "-column", "bogus"}); err == nil {
		t.Fatal("unknown aggregate column accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"count"}); err == nil {
		t.Fatal("missing -dir accepted")
	}
	dir := seedStore(t)
	if err := run([]string{"-dir", dir}); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := run([]string{"-dir", dir, "explode"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

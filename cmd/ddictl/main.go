// Command ddictl inspects and queries a DDI disk store offline.
//
// Usage:
//
//	ddictl -dir ./vdap-data count
//	ddictl -dir ./vdap-data query -source obd -from 10 -to 3600 -limit 5
//	ddictl -dir ./vdap-data get -id 17
//	ddictl -dir ./vdap-data segments
//	ddictl -dir ./vdap-data agg -column x -from 10 -to 3600
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ddi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddictl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("ddictl", flag.ContinueOnError)
	dir := global.String("dir", "", "DDI store directory")
	if err := global.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("need a subcommand: count | query | get | segments | agg")
	}
	store, err := ddi.OpenDiskStore(*dir)
	if err != nil {
		return err
	}
	defer store.Close()

	switch rest[0] {
	case "count":
		fmt.Println(store.Count())
		return nil
	case "get":
		fs := flag.NewFlagSet("get", flag.ContinueOnError)
		id := fs.Uint64("id", 0, "record ID")
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		rec, ok := store.Get(*id)
		if !ok {
			return fmt.Errorf("record %d not found", *id)
		}
		printRecord(rec)
		return nil
	case "query":
		fs := flag.NewFlagSet("query", flag.ContinueOnError)
		source := fs.String("source", "", "source filter (obd, gps, weather, traffic, social, user)")
		from := fs.Float64("from", 0, "window start, virtual seconds")
		to := fs.Float64("to", 0, "window end, virtual seconds (0 = open)")
		limit := fs.Int("limit", 20, "max records")
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		q := ddi.Query{
			Source: ddi.Source(*source),
			From:   time.Duration(*from * float64(time.Second)),
			To:     time.Duration(*to * float64(time.Second)),
			Limit:  *limit,
		}
		recs := store.Select(q)
		for _, r := range recs {
			printRecord(r)
		}
		fmt.Printf("%d record(s)\n", len(recs))
		return nil
	case "segments":
		zms := store.Segments()
		for i, zm := range zms {
			srcs := ""
			for j, s := range zm.Sources {
				if j > 0 {
					srcs += ","
				}
				srcs += string(s)
			}
			fmt.Printf("seg %-3d rows=%-7d at=[%v, %v] ids=[%d, %d] box=(%.1f,%.1f)..(%.1f,%.1f) sources=%s\n",
				i, zm.Count, zm.MinAt, zm.MaxAt, zm.MinID, zm.MaxID,
				zm.MinX, zm.MinY, zm.MaxX, zm.MaxY, srcs)
		}
		fmt.Printf("%d segment(s), %d unsealed record(s)\n", len(zms), unsealed(store, zms))
		return nil
	case "agg":
		fs := flag.NewFlagSet("agg", flag.ContinueOnError)
		source := fs.String("source", "", "source filter (obd, gps, weather, traffic, social, user)")
		from := fs.Float64("from", 0, "window start, virtual seconds")
		to := fs.Float64("to", 0, "window end, virtual seconds (0 = open)")
		column := fs.String("column", "at", "column: at | x | y | payload_bytes")
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		col, ok := ddi.ParseColumn(*column)
		if !ok {
			return fmt.Errorf("unknown column %q (want at | x | y | payload_bytes)", *column)
		}
		q := ddi.Query{
			Source: ddi.Source(*source),
			From:   time.Duration(*from * float64(time.Second)),
			To:     time.Duration(*to * float64(time.Second)),
		}
		agg, stats, err := store.Aggregate(q, col)
		if err != nil {
			return err
		}
		fmt.Printf("column=%s count=%d min=%g max=%g mean=%g\n",
			col.String(), agg.Count, agg.Min, agg.Max, agg.Mean)
		fmt.Printf("plan: %d/%d segment(s) pruned (skip ratio %.2f), %d row(s) scanned\n",
			stats.Pruned, stats.Segments, stats.SkipRatio(), stats.RowsScanned)
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

// unsealed reports how many records still live in the memtable (i.e. are
// not yet covered by a sealed segment).
func unsealed(store *ddi.DiskStore, zms []ddi.ZoneMap) int {
	n := store.Count()
	for _, zm := range zms {
		n -= zm.Count
	}
	return n
}

func printRecord(r ddi.Record) {
	fmt.Printf("#%d %-8s t=%-10v (%.1f, %.1f) %s\n", r.ID, r.Source, r.At, r.X, r.Y, r.Payload)
}

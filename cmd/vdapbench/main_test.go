package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunEachExperiment smoke-tests every experiment through the CLI entry
// point with short parameters.
func TestRunEachExperiment(t *testing.T) {
	fast := []string{"table1", "fig3", "dsf", "elastic", "arch", "collab", "commute", "fleet", "sweep", "hdmap", "compress", "retrain", "pbeam"}
	for _, exp := range fast {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, 7, 4*time.Second, t.TempDir(), "", "", "", "", 4, 2, 0, 0, 0, serveOpts{}); err != nil {
				t.Fatalf("run(%s): %v", exp, err)
			}
		})
	}
}

func TestRunFig2Short(t *testing.T) {
	if err := run("fig2", 7, 4*time.Second, "", "", "", "", "", 4, 2, 0, 0, 0, serveOpts{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDDICache(t *testing.T) {
	if err := run("ddicache", 7, time.Second, t.TempDir(), "", "", "", "", 4, 2, 0, 0, 0, serveOpts{}); err != nil {
		t.Fatal(err)
	}
}

// TestRunDDIStore smoke-tests the E20 columnar-store sweep end to end at a
// small corpus size and checks the ddi.* rows land in the bench report.
func TestRunDDIStore(t *testing.T) {
	bench := filepath.Join(t.TempDir(), "bench.json")
	if err := run("ddi", 7, time.Second, t.TempDir(), "", bench, "", "", 4, 2, 0, 0, 50_000, serveOpts{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ddi.ingest", "ddi.scan_window", "ddi.segment_skip_ratio", "ddi.compaction"} {
		if !strings.Contains(string(data), name) {
			t.Fatalf("bench report missing row %q:\n%s", name, data)
		}
	}
}

// TestRunDDIStoreDeterministicAcrossParallel: the E20 stdout digest must be
// byte-identical no matter how many query-sweep workers ran.
func TestRunDDIStoreDeterministicAcrossParallel(t *testing.T) {
	at := func(parallel int) []byte {
		return captureStdout(t, func() error {
			bench := filepath.Join(t.TempDir(), "bench.json")
			return run("ddi", 42, time.Second, t.TempDir(), "", bench, "", "", 4, parallel, 0, 0, 120_000, serveOpts{})
		})
	}
	serial := at(1)
	if got := at(4); !bytes.Equal(serial, got) {
		t.Fatalf("-parallel 4 digest differs from -parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, got)
	}
}

// captureStdout runs f with os.Stdout redirected into a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, f func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		buf.ReadFrom(r)
		done <- buf.Bytes()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

// TestRunSweepDeterministicAcrossParallel: the acceptance criterion for the
// parallel runner — a ≥8-replication sweep at -parallel 8 must be
// byte-identical to the -parallel 1 run for the same seed.
func TestRunSweepDeterministicAcrossParallel(t *testing.T) {
	at := func(parallel int) []byte {
		return captureStdout(t, func() error {
			return run("sweep", 42, time.Second, "", "", "", "", "", 8, parallel, 0, 0, 0, serveOpts{})
		})
	}
	serial := at(1)
	for _, parallel := range []int{2, 8} {
		if got := at(parallel); !bytes.Equal(serial, got) {
			t.Fatalf("-parallel %d output differs from -parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s",
				parallel, serial, got)
		}
	}
	if len(serial) == 0 {
		t.Fatal("sweep produced no output")
	}
}

// TestRunScaleDeterministicAcrossShards: the acceptance criterion for
// the epoch-barrier fleet executor — the E16 stdout (deterministic
// simulation table, digests included) must be byte-identical between
// -shards 1 and -shards 4 for the same seed, and between -lanes 1 and
// -lanes 4, and the merged BENCH_PERF.json must carry the fleet.scale
// and fleet.lanes rows.
func TestRunScaleDeterministicAcrossShards(t *testing.T) {
	at := func(shards, lanes int) []byte {
		bench := filepath.Join(t.TempDir(), "bench.json")
		out := captureStdout(t, func() error {
			return run("scale", 42, time.Second, "", "", bench, "", "64", 4, 2, shards, lanes, 0, serveOpts{})
		})
		data, err := os.ReadFile(bench)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(data, []byte("fleet.scale.v64")) {
			t.Fatalf("bench report missing fleet.scale rows:\n%s", data)
		}
		if !bytes.Contains(data, []byte("fleet.lanes.v64")) {
			t.Fatalf("bench report missing fleet.lanes rows:\n%s", data)
		}
		return out
	}
	base := at(1, 1)
	for _, cell := range [][2]int{{4, 1}, {1, 4}, {4, 4}} {
		if got := at(cell[0], cell[1]); !bytes.Equal(base, got) {
			t.Fatalf("-shards %d -lanes %d stdout differs from -shards 1 -lanes 1:\n--- base ---\n%s\n--- got ---\n%s",
				cell[0], cell[1], base, got)
		}
	}
}

func TestParseFleetSizes(t *testing.T) {
	if got, err := parseFleetSizes(" 100, 1000 "); err != nil || len(got) != 2 || got[0] != 100 || got[1] != 1000 {
		t.Fatalf("parseFleetSizes = %v, %v", got, err)
	}
	if got, err := parseFleetSizes(""); err != nil || got != nil {
		t.Fatalf("empty flag = %v, %v", got, err)
	}
	for _, bad := range []string{"x", "0", "-3", "1,,2"} {
		if _, err := parseFleetSizes(bad); err == nil {
			t.Fatalf("parseFleetSizes(%q) accepted", bad)
		}
	}
}

// TestRunArchTraced checks the -trace path: the arch experiment must emit
// a valid Chrome trace covering the five component lanes, byte-identical
// across same-seed runs.
func TestRunArchTraced(t *testing.T) {
	once := func() []byte {
		t.Helper()
		out := filepath.Join(t.TempDir(), "out.json")
		if err := run("arch", 7, time.Second, "", out, "", "", "", 4, 2, 0, 0, 0, serveOpts{}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first, second := once(), once()
	if !bytes.Equal(first, second) {
		t.Fatal("trace output differs across identical runs")
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	lanes := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if n, ok := ev.Args["name"].(string); ok {
				lanes[n] = true
			}
		}
	}
	for _, comp := range []string{"vcu", "offload", "network", "xedge", "cloud", "ddi"} {
		if !lanes[comp] {
			t.Fatalf("component %q missing from trace lanes %v", comp, lanes)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run("warp-drive", 1, time.Second, "", "", "", "", "", 4, 2, 0, 0, 0, serveOpts{})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// The error must carry the full experiment listing from the registry.
	for _, e := range experimentList {
		if !strings.Contains(err.Error(), e.name) || !strings.Contains(err.Error(), e.desc) {
			t.Fatalf("unknown-experiment error missing %q:\n%s", e.name, err)
		}
	}
}

// TestExperimentRegistryComplete pins the registry as the single source of
// truth: every listed experiment has a runner, every runner is listed, and
// the flag usage line covers them all.
func TestExperimentRegistryComplete(t *testing.T) {
	listed := map[string]bool{}
	for _, e := range experimentList {
		if e.desc == "" {
			t.Fatalf("experiment %q has no description", e.name)
		}
		if listed[e.name] {
			t.Fatalf("experiment %q listed twice", e.name)
		}
		listed[e.name] = true
		if !strings.Contains(expNames(), e.name) {
			t.Fatalf("flag usage missing %q: %s", e.name, expNames())
		}
	}
	// Drive run() once with an impossible name purely to surface a mismatch
	// between the registry and the runner table via the error listing; the
	// real cross-check is structural, in run()'s construction of runners
	// from the same map keys. Spot-check a few registry names resolve.
	for _, name := range []string{"table1", "perf", "scale", "obs", "chaos"} {
		if !listed[name] {
			t.Fatalf("expected experiment %q in registry", name)
		}
	}
}

// TestRunObsDeterministic is the E17 acceptance criterion: stdout (health
// table + flight-recorder log + series summary) and RUN_REPORT.json must
// be byte-identical across -parallel and -shards values for the same seed.
func TestRunObsDeterministic(t *testing.T) {
	at := func(parallel, shards int) ([]byte, []byte) {
		report := filepath.Join(t.TempDir(), "run_report.json")
		out := captureStdout(t, func() error {
			return run("obs", 42, time.Second, "", "", "", report, "", 2, parallel, shards, 0, 0, serveOpts{})
		})
		data, err := os.ReadFile(report)
		if err != nil {
			t.Fatal(err)
		}
		return out, data
	}
	baseOut, baseReport := at(1, 1)
	if len(baseOut) == 0 {
		t.Fatal("obs produced no output")
	}
	if !bytes.Contains(baseReport, []byte("openvdap.run_report/v1")) {
		t.Fatalf("report missing schema:\n%s", baseReport[:min(len(baseReport), 200)])
	}
	for _, cell := range []struct{ parallel, shards int }{{4, 1}, {1, 4}, {2, 3}} {
		out, rep := at(cell.parallel, cell.shards)
		if !bytes.Equal(baseOut, out) {
			t.Fatalf("-parallel %d -shards %d stdout differs from baseline", cell.parallel, cell.shards)
		}
		if !bytes.Equal(baseReport, rep) {
			t.Fatalf("-parallel %d -shards %d RUN_REPORT.json differs from baseline", cell.parallel, cell.shards)
		}
	}
	// The report must actually carry the observability payload.
	var doc struct {
		RoundHealth []map[string]any `json:"roundHealth"`
		Events      []map[string]any `json:"events"`
		Series      struct {
			Series []map[string]any `json:"series"`
		} `json:"series"`
	}
	if err := json.Unmarshal(baseReport, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.RoundHealth) == 0 || len(doc.Events) == 0 || len(doc.Series.Series) == 0 {
		t.Fatalf("report payload empty: rounds=%d events=%d series=%d",
			len(doc.RoundHealth), len(doc.Events), len(doc.Series.Series))
	}
}

package main

import (
	"testing"
	"time"
)

// TestRunEachExperiment smoke-tests every experiment through the CLI entry
// point with short parameters.
func TestRunEachExperiment(t *testing.T) {
	fast := []string{"table1", "fig3", "dsf", "elastic", "arch", "collab", "commute", "fleet", "hdmap", "compress", "retrain", "pbeam"}
	for _, exp := range fast {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, 7, 4*time.Second, t.TempDir()); err != nil {
				t.Fatalf("run(%s): %v", exp, err)
			}
		})
	}
}

func TestRunFig2Short(t *testing.T) {
	if err := run("fig2", 7, 4*time.Second, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunDDI(t *testing.T) {
	if err := run("ddi", 7, time.Second, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("warp-drive", 1, time.Second, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

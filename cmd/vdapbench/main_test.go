package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRunEachExperiment smoke-tests every experiment through the CLI entry
// point with short parameters.
func TestRunEachExperiment(t *testing.T) {
	fast := []string{"table1", "fig3", "dsf", "elastic", "arch", "collab", "commute", "fleet", "hdmap", "compress", "retrain", "pbeam"}
	for _, exp := range fast {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, 7, 4*time.Second, t.TempDir(), ""); err != nil {
				t.Fatalf("run(%s): %v", exp, err)
			}
		})
	}
}

func TestRunFig2Short(t *testing.T) {
	if err := run("fig2", 7, 4*time.Second, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunDDI(t *testing.T) {
	if err := run("ddi", 7, time.Second, t.TempDir(), ""); err != nil {
		t.Fatal(err)
	}
}

// TestRunArchTraced checks the -trace path: the arch experiment must emit
// a valid Chrome trace covering the five component lanes, byte-identical
// across same-seed runs.
func TestRunArchTraced(t *testing.T) {
	once := func() []byte {
		t.Helper()
		out := filepath.Join(t.TempDir(), "out.json")
		if err := run("arch", 7, time.Second, "", out); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first, second := once(), once()
	if !bytes.Equal(first, second) {
		t.Fatal("trace output differs across identical runs")
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	lanes := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if n, ok := ev.Args["name"].(string); ok {
				lanes[n] = true
			}
		}
	}
	for _, comp := range []string{"vcu", "offload", "network", "xedge", "cloud", "ddi"} {
		if !lanes[comp] {
			t.Fatalf("component %q missing from trace lanes %v", comp, lanes)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("warp-drive", 1, time.Second, "", ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// Command vdapbench regenerates every table and figure of the OpenVDAP
// paper's evaluation, plus the design-claim ablations (E4-E8).
//
// Usage:
//
//	vdapbench -exp all
//	vdapbench -exp fig2 -seed 7 -duration 5m
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/libvdap"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: "+expNames())
		seed       = flag.Int64("seed", 42, "random seed")
		duration   = flag.Duration("duration", 5*time.Minute, "figure-2 stream duration")
		dir        = flag.String("dir", "", "DDI scratch directory (default: temp)")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON file (supported by -exp arch and -exp sweep)")
		reps       = flag.Int("reps", 8, "replications for -exp sweep/chaos/obs")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for -exp sweep/chaos/obs (output is byte-identical at any level)")
		benchOut   = flag.String("benchout", "BENCH_PERF.json", "output path for the -exp perf / -exp scale report")
		runReport  = flag.String("runreport", "", "output path for the -exp obs RUN_REPORT.json (empty: stdout tables only)")
		shards     = flag.Int("shards", 0, "shard count for -exp scale (0 = sweep 1,2,4,8) and -exp obs (0 = default; simulation output is identical for every value)")
		lanes      = flag.Int("lanes", 0, "commit-lane count for -exp scale (0 = sweep 1,2,4,8; simulation output is identical for every value)")
		vehicles   = flag.String("vehicles", "", "-exp scale comma-separated fleet sizes (default 100,1000,10000)")
		records    = flag.Int("records", 10_000_000, "-exp ddi corpus size")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		clients    = flag.Int("clients", 1000, "-exp serve concurrent HTTP clients")
		serveDur   = flag.Duration("servedur", 5*time.Second, "-exp serve wall-clock load duration")
		mix        = flag.String("mix", "", "-exp serve endpoint mix, e.g. status=30,metrics=25,series=25,events=15,stream=5 (default: built-in mix)")
		serveOut   = flag.String("serveout", "BENCH_SERVE.json", "output path for the -exp serve report")
		chaosOut   = flag.String("chaosout", "BENCH_CHAOS.json", "output path for the -exp chaosserve report")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vdapbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "vdapbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	serve := serveOpts{clients: *clients, duration: *serveDur, mix: *mix, out: *serveOut, chaosOut: *chaosOut}
	if err := run(*exp, *seed, *duration, *dir, *traceOut, *benchOut, *runReport, *vehicles, *reps, *parallel, *shards, *lanes, *records, serve); err != nil {
		fmt.Fprintln(os.Stderr, "vdapbench:", err)
		os.Exit(1)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vdapbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "vdapbench:", err)
			os.Exit(1)
		}
	}
}

// experimentInfo describes one -exp value. The list below is the single
// source of truth: the flag usage line, the -exp all order, the
// unknown-experiment listing, and the runner table are all derived from it.
type experimentInfo struct {
	name string
	desc string
	// all marks experiments included in -exp all. Meta-benchmarks of the
	// platform itself (perf, scale) and file-writing runs (obs) stay out.
	all bool
}

var experimentList = []experimentInfo{
	{"table1", "service latency and energy across VCU devices (Table 1)", true},
	{"fig2", "camera-stream processing rate over a commute (Figure 2)", true},
	{"fig3", "offloading latency across destinations (Figure 3)", true},
	{"dsf", "DSF scheduling-policy ablation (E4)", true},
	{"elastic", "elastic-management objective ablation (E5)", true},
	{"arch", "onboard vs. edge vs. cloud architecture comparison (E6)", true},
	{"compress", "model-compression accuracy/latency sweep (E7)", true},
	{"retrain", "compression with retraining (E8)", true},
	{"pbeam", "pBEAM driving-behavior pipeline (E9)", true},
	{"collab", "multi-vehicle collaboration (E10)", true},
	{"commute", "full-commute integration run (E11)", true},
	{"fleet", "fleet contention over shared edge sites (E12)", true},
	{"sweep", "replicated fleet sweep with merged telemetry (E13)", true},
	{"chaos", "fault-injection sweep, resilience off vs. on (E14)", true},
	{"hdmap", "HD-map prefetch along the route (E2)", true},
	{"ddicache", "DDI two-tier cache latency (E8)", true},
	{"perf", "hot-path micro-benchmarks -> BENCH_PERF.json (E15)", false},
	{"scale", "fleet scaling meta-benchmark -> BENCH_PERF.json (E16)", false},
	{"obs", "flight-recorder fleet run -> RUN_REPORT.json (E17)", false},
	{"serve", "libvdap serving tier under load -> BENCH_SERVE.json (E18)", false},
	{"chaosserve", "paired chaos-proxy load test, resilience off vs. on -> BENCH_CHAOS.json (E19)", false},
	{"ddi", "columnar DDI store ingest/query sweep -> BENCH_PERF.json (E20)", false},
}

// expNames renders the one-line flag usage: all|table1|...|obs.
func expNames() string {
	names := make([]string, 0, len(experimentList)+1)
	names = append(names, "all")
	for _, e := range experimentList {
		names = append(names, e.name)
	}
	return strings.Join(names, "|")
}

// expUsage renders the full experiment listing for unknown -exp errors.
func expUsage() string {
	var b strings.Builder
	b.WriteString("experiments:\n")
	fmt.Fprintf(&b, "  %-10s %s\n", "all", "every paper experiment below (excludes meta-benchmarks)")
	for _, e := range experimentList {
		fmt.Fprintf(&b, "  %-10s %s\n", e.name, e.desc)
	}
	return b.String()
}

// parseFleetSizes turns the -vehicles flag into a fleet-size list; an
// empty flag defers to the experiment's defaults.
func parseFleetSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -vehicles entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// serveOpts carries the -exp serve flag values.
type serveOpts struct {
	clients  int
	duration time.Duration
	mix      string
	out      string
	chaosOut string
}

func run(exp string, seed int64, duration time.Duration, dir, traceOut, benchOut, runReport, vehicles string, reps, parallel, shards, lanes, records int, serve serveOpts) error {
	// With -trace, instrument-aware experiments report spans and metrics;
	// virtual-time determinism makes the file byte-identical per seed.
	var tracer *trace.Tracer
	var metrics *telemetry.Registry
	if traceOut != "" {
		tracer = trace.New(nil)
		metrics = telemetry.NewRegistry()
	}
	runners := map[string]func() error{
		"table1": func() error {
			rows, err := experiments.RunTable1()
			if err != nil {
				return err
			}
			fmt.Println(experiments.Table1Table(rows))
			return nil
		},
		"fig2": func() error {
			rows, err := experiments.RunFigure2(seed, duration)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Figure2Table(rows))
			return nil
		},
		"fig3": func() error {
			rows, err := experiments.RunFigure3()
			if err != nil {
				return err
			}
			fmt.Println(experiments.Figure3Table(rows))
			return nil
		},
		"dsf": func() error {
			rows, err := experiments.RunDSFAblation(8)
			if err != nil {
				return err
			}
			fmt.Println(experiments.DSFTable(rows))
			return nil
		},
		"elastic": func() error {
			rows, err := experiments.RunElastic()
			if err != nil {
				return err
			}
			fmt.Println(experiments.ElasticTable(rows))
			return nil
		},
		"arch": func() error {
			var rows []experiments.ArchRow
			var err error
			if tracer != nil {
				ddiDir, mkErr := os.MkdirTemp("", "vdapbench-arch-ddi-*")
				if mkErr != nil {
					return mkErr
				}
				defer os.RemoveAll(ddiDir)
				rows, err = experiments.RunArchComparisonTraced(tracer, metrics, ddiDir)
			} else {
				rows, err = experiments.RunArchComparison()
			}
			if err != nil {
				return err
			}
			fmt.Println(experiments.ArchTable(rows))
			return nil
		},
		"compress": func() error {
			rows, err := experiments.RunCompressionSweep(seed)
			if err != nil {
				return err
			}
			fmt.Println(experiments.CompressTable(rows))
			return nil
		},
		"pbeam": func() error {
			rows, err := experiments.RunPBEAMPipeline(seed, 3)
			if err != nil {
				return err
			}
			fmt.Println(experiments.PBEAMTable(rows))
			return nil
		},
		"retrain": func() error {
			rows, err := experiments.RunCompressionRetrain(seed)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RetrainTable(rows))
			return nil
		},
		"collab": func() error {
			rows, err := experiments.RunCollaboration()
			if err != nil {
				return err
			}
			fmt.Println(experiments.CollabTable(rows))
			return nil
		},
		"fleet": func() error {
			rows, err := experiments.RunFleetContention()
			if err != nil {
				return err
			}
			fmt.Println(experiments.FleetTable(rows))
			return nil
		},
		"sweep": func() error {
			res, err := experiments.RunFleetSweep(experiments.SweepConfig{
				Replications: reps,
				Parallel:     parallel,
				Seed:         seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(experiments.FleetSweepTable(res))
			fmt.Printf("merged telemetry (%d replications, %d spans):\n", len(res.Rows), res.Trace.SpanCount())
			fmt.Print(res.Metrics.Render())
			if tracer != nil {
				tracer.Merge(res.Trace)
				metrics.Merge(res.Metrics)
			}
			return nil
		},
		"chaos": func() error {
			res, err := experiments.RunChaosSweep(experiments.ChaosConfig{
				Replications: reps,
				Parallel:     parallel,
				Seed:         seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(experiments.ChaosTable(res))
			fmt.Printf("merged telemetry (%d cells, %d spans):\n", len(res.Rows), res.Trace.SpanCount())
			fmt.Print(res.Metrics.Render())
			if tracer != nil {
				tracer.Merge(res.Trace)
				metrics.Merge(res.Metrics)
			}
			return nil
		},
		"commute": func() error {
			rows, err := experiments.RunCommute()
			if err != nil {
				return err
			}
			fmt.Println(experiments.CommuteTable(rows))
			return nil
		},
		"hdmap": func() error {
			rows, err := experiments.RunHDMapPrefetch()
			if err != nil {
				return err
			}
			fmt.Println(experiments.HDMapTable(rows))
			return nil
		},
		// perf is deliberately not part of -exp all: it is a meta-benchmark
		// of the platform itself (E15), not a paper figure, and its wall
		// times are machine-dependent.
		"perf": func() error {
			rep, err := experiments.RunPerf()
			if err != nil {
				return err
			}
			fmt.Println(experiments.PerfTable(rep))
			out, err := rep.Marshal()
			if err != nil {
				return err
			}
			if err := os.WriteFile(benchOut, out, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "vdapbench: wrote %s (%s)\n", benchOut, experiments.PerfSchema)
			return nil
		},
		// scale is E16: like perf it is a meta-benchmark (machine-dependent
		// wall clock) and so excluded from -exp all. Its stdout carries only
		// the deterministic simulation table — `make determinism` diffs it
		// between -shards values — while wall-clock timing goes to stderr
		// and BENCH_PERF.json.
		"scale": func() error {
			sizes, err := parseFleetSizes(vehicles)
			if err != nil {
				return err
			}
			cfg := experiments.ScaleConfig{Vehicles: sizes, Seed: seed}
			if shards > 0 {
				cfg.Shards = []int{shards}
			}
			if lanes > 0 {
				cfg.Lanes = []int{lanes}
			}
			res, err := experiments.RunScale(cfg)
			if err != nil {
				return err
			}
			fmt.Println(experiments.ScaleTable(res))
			fmt.Fprintln(os.Stderr, experiments.ScaleTimingTable(res))
			fmt.Fprintln(os.Stderr, experiments.ScaleLaneTable(res))
			if err := experiments.MergeScaleIntoPerfReport(benchOut, res); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "vdapbench: merged %d fleet.scale and %d fleet.lanes rows into %s (%s)\n",
				len(res.Timing), len(res.Lanes), benchOut, experiments.PerfSchema)
			return nil
		},
		// obs is E17: a faulted fleet run with the observability stack on.
		// Stdout carries only deterministic output (health table, event log,
		// series summary) so `make determinism` can diff it across -shards
		// and -parallel values; -runreport writes the same data as JSON.
		"obs": func() error {
			res, err := experiments.RunObs(experiments.ObsConfig{
				Replications: reps,
				Parallel:     parallel,
				Seed:         seed,
				Shards:       shards,
			})
			if err != nil {
				return err
			}
			fmt.Println(experiments.ObsTable(res))
			fmt.Printf("flight recorder (%d events, %d fault transitions planned):\n",
				res.Events.Len(), res.FaultEvents)
			fmt.Print(res.Events.RenderTable())
			fmt.Println("sampled series:")
			fmt.Print(res.Series.Render())
			if runReport != "" {
				rep := experiments.BuildRunReport(res)
				out, err := rep.Marshal()
				if err != nil {
					return err
				}
				if err := os.WriteFile(runReport, out, 0o644); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "vdapbench: wrote %s (%s)\n", runReport, experiments.RunReportSchema)
			}
			return nil
		},
		// serve is E18: the serving-tier load test. Like perf/scale it is a
		// machine-dependent meta-benchmark, so it stays out of -exp all.
		"serve": func() error {
			mixEntries, err := libvdap.ParseMix(serve.mix)
			if err != nil {
				return err
			}
			cfg := experiments.DefaultServeConfig()
			cfg.Clients = serve.clients
			cfg.Duration = serve.duration
			cfg.Mix = mixEntries
			cfg.Seed = seed
			cfg.DataDir = dir
			rep, err := experiments.RunServe(cfg)
			if err != nil {
				return err
			}
			fmt.Println(experiments.ServeTable(rep))
			out, err := rep.Marshal()
			if err != nil {
				return err
			}
			if err := os.WriteFile(serve.out, out, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "vdapbench: wrote %s (%s)\n", serve.out, experiments.ServeSchema)
			return nil
		},
		// chaosserve is E19: the E18 stack behind a seeded chaos proxy, run
		// as a paired resilience-off/on comparison. -clients 0 skips the
		// traffic entirely and prints only the compiled chaos plan, which is
		// byte-identical at every -parallel level — `make determinism` diffs
		// that output across worker counts.
		"chaosserve": func() error {
			mixEntries, err := libvdap.ParseMix(serve.mix)
			if err != nil {
				return err
			}
			cfg := experiments.DefaultChaosServeConfig()
			cfg.Clients = serve.clients
			cfg.Duration = serve.duration
			cfg.Mix = mixEntries
			cfg.Seed = seed
			cfg.DataDir = dir
			cfg.Parallel = parallel
			if serve.clients == 0 {
				plan, err := experiments.CompileChaosPlan(cfg)
				if err != nil {
					return err
				}
				fmt.Print(plan.Describe())
				return nil
			}
			rep, err := experiments.RunChaosServe(cfg)
			if err != nil {
				return err
			}
			fmt.Println(experiments.ChaosServeTable(rep))
			out, err := rep.Marshal()
			if err != nil {
				return err
			}
			if err := os.WriteFile(serve.chaosOut, out, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "vdapbench: wrote %s (%s)\n", serve.chaosOut, experiments.ChaosServeSchema)
			return nil
		},
		"ddicache": func() error {
			d := dir
			if d == "" {
				tmp, err := os.MkdirTemp("", "vdapbench-ddi-*")
				if err != nil {
					return err
				}
				defer os.RemoveAll(tmp)
				d = tmp
			}
			rows, err := experiments.RunDDIBench(d, seed)
			if err != nil {
				return err
			}
			fmt.Println(experiments.DDITable(rows))
			return nil
		},
		// ddi is E20: the columnar store ingest/query sweep. Like perf and
		// scale it is a machine-dependent meta-benchmark, so it stays out
		// of -exp all. Stdout carries only the deterministic digest —
		// `make determinism` diffs it between -parallel levels — while
		// wall-clock throughput goes to stderr and BENCH_PERF.json.
		"ddi": func() error {
			d := dir
			if d == "" {
				tmp, err := os.MkdirTemp("", "vdapbench-ddistore-*")
				if err != nil {
					return err
				}
				defer os.RemoveAll(tmp)
				d = tmp
			}
			res, err := experiments.RunDDIStore(experiments.DDIStoreConfig{
				Records:  records,
				Seed:     seed,
				Parallel: parallel,
				Dir:      d,
			})
			if err != nil {
				return err
			}
			fmt.Println(experiments.DDIStoreTable(res))
			fmt.Fprintln(os.Stderr, experiments.DDIStoreTimingTable(res))
			if err := experiments.MergeDDIStoreIntoPerfReport(benchOut, res); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "vdapbench: merged %d ddi rows into %s (%s)\n",
				len(experiments.DDIStorePerfRows(res)), benchOut, experiments.PerfSchema)
			return nil
		},
	}
	runSelected := func() error {
		if exp == "all" {
			for _, e := range experimentList {
				if !e.all {
					continue
				}
				if err := runners[e.name](); err != nil {
					return fmt.Errorf("%s: %w", e.name, err)
				}
			}
			return nil
		}
		r, ok := runners[exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q\n%s", exp, expUsage())
		}
		return r()
	}
	if err := runSelected(); err != nil {
		return err
	}
	if traceOut != "" {
		out, err := tracer.ChromeTrace()
		if err != nil {
			return fmt.Errorf("render trace: %w", err)
		}
		if err := os.WriteFile(traceOut, out, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "vdapbench: wrote %d spans over components %v to %s\n",
			tracer.SpanCount(), tracer.Components(), traceOut)
	}
	return nil
}

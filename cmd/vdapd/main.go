// Command vdapd runs one OpenVDAP vehicle node: it assembles the full
// platform (VCU, EdgeOSv, DDI, libvdap), installs the built-in services,
// starts periodic data collection, advances the simulation in real time,
// and serves the libvdap RESTful API.
//
// Usage:
//
//	vdapd -listen :8947 -data ./vdap-data -speed 35
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/edgeos"
	"repro/internal/obs"
	"repro/internal/tasks"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:8947", "API listen address")
		dataDir  = flag.String("data", "", "DDI data directory (default: temp)")
		speedMPH = flag.Float64("speed", 35, "vehicle cruise speed, MPH")
		seed     = flag.Int64("seed", 1, "simulation seed")
		tick     = flag.Duration("tick", 250*time.Millisecond, "wall-clock per virtual second")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON file at shutdown")
		sample   = flag.Duration("sample", obs.DefaultSampleInterval,
			"virtual-time metric sampling interval for /v1/metrics/series (0 disables)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second,
			"graceful-shutdown budget: in-flight requests and streams get this long to finish (0 closes immediately)")
	)
	flag.Parse()
	if err := run(*listen, *dataDir, *speedMPH, *seed, *tick, *traceOut, *sample, *drainTimeout); err != nil {
		log.Fatal("vdapd: ", err)
	}
}

// buildPlatform assembles the vehicle node with the paper's four built-in
// service types (§II) installed and data collection running.
func buildPlatform(dataDir string, speedMPH float64, seed int64) (*core.Platform, error) {
	cfg := core.DefaultConfig(dataDir)
	cfg.Seed = seed
	cfg.SpeedMPH = speedMPH
	p, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	services := []*edgeos.Service{
		{
			Name: "pedestrian-alert", Priority: edgeos.PrioritySafety,
			Deadline: 500 * time.Millisecond, DAG: tasks.PedestrianAlert(),
			TEE: true, Image: []byte("pedestrian-alert-v1"),
		},
		{
			Name: "real-time-diagnostics", Priority: edgeos.PriorityInteractive,
			Deadline: 2 * time.Second, DAG: tasks.Diagnostics(),
			Image: []byte("diagnostics-v1"),
		},
		{
			Name: "infotainment", Priority: edgeos.PriorityBackground,
			DAG: tasks.InfotainmentDecode(), Image: []byte("infotainment-v1"),
		},
		{
			Name: "kidnapper-search", Priority: edgeos.PriorityInteractive,
			Deadline: 2 * time.Second, DAG: tasks.ALPR(),
			Image: []byte("mobile-a3-v1"),
		},
	}
	for _, s := range services {
		if err := p.InstallService(s); err != nil {
			p.Close()
			return nil, fmt.Errorf("install %s: %w", s.Name, err)
		}
	}
	if err := p.StartCollection(time.Second); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}

// dumpTrace writes the platform's recorded spans as Chrome trace_event
// JSON (open in chrome://tracing or Perfetto).
func dumpTrace(p *core.Platform, path string) error {
	out, err := p.Tracer().ChromeTrace()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %d spans to %s", p.Tracer().SpanCount(), path)
	return nil
}

func run(listen, dataDir string, speedMPH float64, seed int64, tick time.Duration, traceOut string, sample, drainTimeout time.Duration) error {
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "vdapd-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}
	p, err := buildPlatform(dataDir, speedMPH, seed)
	if err != nil {
		return err
	}
	defer p.Close()
	for _, s := range p.Elastic().Services() {
		log.Printf("installed service %s (priority %d)", s.Name, s.Priority)
	}
	if sample > 0 {
		if err := p.StartSampling(sample); err != nil {
			return err
		}
		log.Printf("sampling metrics every %v of virtual time (GET /v1/metrics/series, /v1/events, /v1/stream)", sample)
	}

	srv := &http.Server{Addr: listen, Handler: p.API(), ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("libvdap API on http://%s/api/v1/status (virtual time advances 1s per %v)", listen, tick)

	if traceOut != "" {
		log.Printf("will write Chrome trace to %s at shutdown (live: GET /api/v1/trace)", traceOut)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// AdvanceTo holds the API server's run lock for the step, so
			// in-flight handlers never observe a half-advanced platform.
			if err := p.AdvanceTo(p.Engine().Now() + time.Second); err != nil {
				srv.Close()
				return err
			}
		case err := <-errCh:
			return err
		case <-stop:
			log.Printf("draining at virtual time %v (budget %v)", p.Engine().Now(), drainTimeout)
			if traceOut != "" {
				if err := dumpTrace(p, traceOut); err != nil {
					log.Printf("trace dump: %v", err)
				}
			}
			if drainTimeout <= 0 {
				fmt.Println(p.Report())
				return srv.Close()
			}
			// Two-stage drain: the libvdap server stops admission and
			// finishes in-flight work (streams get a final frame), then the
			// HTTP listener closes out whatever keep-alive conns remain.
			ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			defer cancel()
			if err := p.Server().Shutdown(ctx); err != nil {
				log.Printf("drain: %v", err)
			}
			fmt.Println(p.Report())
			if err := srv.Shutdown(ctx); err != nil {
				return srv.Close()
			}
			return nil
		}
	}
}

package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/libvdap"
)

func TestBuildPlatformInstallsBuiltins(t *testing.T) {
	p, err := buildPlatform(t.TempDir(), 35, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	want := map[string]bool{
		"pedestrian-alert":      false,
		"real-time-diagnostics": false,
		"infotainment":          false,
		"kidnapper-search":      false,
	}
	for _, s := range p.Elastic().Services() {
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("built-in service %s not installed", name)
		}
	}
	// The node serves its API and runs services end to end.
	ts := httptest.NewServer(p.API())
	defer ts.Close()
	client, err := libvdap.NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Invoke("kidnapper-search")
	if err != nil {
		t.Fatal(err)
	}
	if res.HungUp || res.LatencyMS <= 0 {
		t.Fatalf("invoke = %+v", res)
	}
	// Collection is live: advance virtual time and see records.
	if err := p.Engine().RunUntil(p.Engine().Now() + 5*time.Second); err != nil {
		t.Fatal(err)
	}
	recs, _, err := client.QueryData("obd", 0, p.Engine().Now().Seconds(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no OBD records collected")
	}
}
